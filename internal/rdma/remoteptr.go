// Package rdma defines the verbs-level abstraction the distributed index
// designs are written against: registered memory regions with RDMA-style
// atomicity, remote pointers, one-sided verbs (READ, WRITE, CAS,
// FETCH_AND_ADD), two-sided RPC (SEND/RECEIVE over reliable connections with
// shared receive queues), and remote allocation (RDMA_ALLOC).
//
// Three interchangeable transports implement the API:
//
//   - direct: in-process, immediate execution with real atomics (functional
//     and race testing),
//   - simnet: a discrete-event-simulated InfiniBand-style fabric with a
//     calibrated performance model (all experiments),
//   - tcpnet: real TCP sockets with a per-server verbs agent (multi-process
//     deployment).
package rdma

import "fmt"

// RemotePtr is an 8-byte global pointer into the memory pool of a NAM
// cluster, following the encoding of Section 4.1 of the paper: a null bit, a
// 7-bit memory-server ID, and a 7-byte byte offset into that server's
// registered region.
//
// The zero value is the null pointer. Valid (non-null) pointers have the
// presence bit set, so a pointer to offset 0 of server 0 is distinguishable
// from null.
type RemotePtr uint64

const (
	ptrPresentBit         = 1 << 63
	ptrServerShift        = 56
	ptrServerMask  uint64 = 0x7f << ptrServerShift
	ptrOffsetMask  uint64 = (1 << ptrServerShift) - 1

	// MaxServers is the largest number of memory servers addressable by a
	// RemotePtr (7-bit server ID).
	MaxServers = 128
	// MaxOffset is the largest encodable byte offset (7 bytes).
	MaxOffset = 1<<ptrServerShift - 1
)

// NullPtr is the null remote pointer.
const NullPtr RemotePtr = 0

// MakePtr builds a remote pointer to the given byte offset in the region of
// the given memory server. It panics if server or offset are out of range;
// those are programming errors, not runtime conditions.
func MakePtr(server int, offset uint64) RemotePtr {
	if server < 0 || server >= MaxServers {
		panic(fmt.Sprintf("rdma: server id %d out of range [0,%d)", server, MaxServers))
	}
	if offset > MaxOffset {
		panic(fmt.Sprintf("rdma: offset %#x exceeds 7-byte range", offset))
	}
	return RemotePtr(ptrPresentBit | uint64(server)<<ptrServerShift | offset)
}

// IsNull reports whether p is the null pointer.
func (p RemotePtr) IsNull() bool { return uint64(p)&ptrPresentBit == 0 }

// Server returns the memory-server ID encoded in p. Calling Server on a null
// pointer returns 0; callers should check IsNull first.
func (p RemotePtr) Server() int { return int(uint64(p) & ptrServerMask >> ptrServerShift) }

// Offset returns the byte offset encoded in p.
func (p RemotePtr) Offset() uint64 { return uint64(p) & ptrOffsetMask }

// Add returns a pointer displaced by delta bytes within the same server.
func (p RemotePtr) Add(delta uint64) RemotePtr {
	if p.IsNull() {
		panic("rdma: Add on null pointer")
	}
	return MakePtr(p.Server(), p.Offset()+delta)
}

// String formats p for diagnostics.
func (p RemotePtr) String() string {
	if p.IsNull() {
		return "null"
	}
	return fmt.Sprintf("srv%d+%#x", p.Server(), p.Offset())
}
