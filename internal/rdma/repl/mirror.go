package repl

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/retry"
)

// mirrorLockBudget bounds how long one push waits for a backup page lock
// held by a concurrent push (or re-CASes after losing the lock race).
const mirrorLockBudget = 64

// Mirrorer implements btree.Replicator: it pushes committed page
// post-images to the live backups of the page's home group.
//
// Push protocol for an in-place update (MirrorPage), per backup, all at the
// page's identity offset:
//
//  1. READ [page word0, group epoch word] in one same-QP batch — the words
//     complete in posting order, so if the epoch word still matches the
//     client's view, word0 was read under a history this client is current
//     with.
//  2. Epoch changed -> adopt it and abort with ErrGroupMoved (the op
//     re-runs under the new routing; the acked state is already on the
//     promoted member or the op stays un-acked).
//  3. word0 >= pushed version -> a concurrent push superseded this one
//     (pushes of one page carry the total order of its primary page lock);
//     done.
//  4. CAS word0 -> word0|1: lock the backup copy against concurrent
//     pushes.
//  5. CAS the epoch word expecting no change (the CAS fence of the design:
//     its atomic compare makes "still my epoch" and "stale pusher" the
//     same check). Moved -> restore word0, abort with ErrGroupMoved. This
//     re-check runs while the page lock is held, closing the race where a
//     promotion lands between step 1 and step 4.
//  6. WRITE the page body (words 1..n).
//  7. WRITE word0 = pushed version: publish and unlock in one atomic word.
//
// A backup that reports ErrServerLost is marked dead in the client's view
// and skipped from then on (degraded ack: writes stay available when a
// backup dies; losing the remaining copies afterwards is a genuine k-fault
// loss). Any other error aborts the surrounding operation un-acked.
//
// Like the Tree that calls it, a Mirrorer is owned by one client goroutine.
type Mirrorer struct {
	ep   rdma.Endpoint // the client's Router (explicit-replica verbs pass through)
	lay  nam.ReplicaLayout
	view *View
	pol  *retry.Policy
	rec  rdma.Reconnector // literal member reconnects
	env  rdma.Env

	// Events receives degraded-ack and epoch-adoption events; may be nil.
	Events Events

	w0buf, epbuf [1]uint64
	mptrs        [2]rdma.RemotePtr
	mdst         [2][]uint64
}

// NewMirrorer builds the mirror half of a client's replication stack,
// sharing the Router's view (promotions observed by either side are visible
// to both). pol may be nil (defaults); env supplies Pause for lock waits.
func NewMirrorer(router *Router, env rdma.Env, pol *retry.Policy) *Mirrorer {
	if pol == nil {
		pol = &retry.Policy{}
	}
	return &Mirrorer{ep: router, lay: router.lay, view: router.view, pol: pol, rec: router.rec, env: env}
}

// targets enumerates the members of group home that must receive pushes:
// everyone except the acting primary (which holds the authoritative copy
// the tree just wrote) and members already observed dead.
func (m *Mirrorer) targets(home int, visit func(member int) error) error {
	acting := m.view.Acting(home)
	for _, b := range m.lay.Groups.Members(home) {
		if b == acting || m.view.Dead(b) {
			continue
		}
		err := visit(b)
		if err == nil {
			continue
		}
		if errors.Is(err, rdma.ErrServerLost) {
			// Degraded ack: the backup is gone; later pushes skip it.
			m.view.MarkDead(b)
			if m.Events != nil {
				m.Events.MemberDeadEvent(home, b)
			}
			continue
		}
		return err
	}
	return nil
}

// groupMoved adopts a newer observed epoch and returns the abort error.
func (m *Mirrorer) groupMoved(home int, observed uint64) error {
	m.view.SetEpoch(home, observed)
	if m.Events != nil {
		m.Events.GroupMovedEvent(home, m.view.Epoch(home))
	}
	return fmt.Errorf("repl: group %d epoch moved to %d during mirror push: %w",
		home, m.view.Epoch(home), rdma.ErrGroupMoved)
}

// MirrorPage implements btree.Replicator.
func (m *Mirrorer) MirrorPage(p rdma.RemotePtr, img []uint64) error {
	home := p.Server()
	e := m.view.Epoch(home)
	vI := layout.BufVersion(img)
	return m.targets(home, func(b int) error {
		return m.pushVersioned(home, b, p.Offset(), img, vI, e)
	})
}

func (m *Mirrorer) pushVersioned(home, b int, off uint64, img []uint64, vI, e uint64) error {
	pagePtr := rdma.MakePtr(b, off)
	epochPtr := nam.GroupEpochPtr(b, home)
	for attempt := 0; attempt < mirrorLockBudget; attempt++ {
		// (1) word0 then epoch, one in-order batch.
		m.mptrs = [2]rdma.RemotePtr{pagePtr, epochPtr}
		m.mdst = [2][]uint64{m.w0buf[:], m.epbuf[:]}
		if err := m.pol.Do(m.rec, b, func() error {
			return m.ep.ReadMulti(m.mptrs[:], m.mdst[:])
		}); err != nil {
			return err
		}
		if m.epbuf[0] != e {
			return m.groupMoved(home, m.epbuf[0]) // (2)
		}
		w := m.w0buf[0]
		if !layout.IsLocked(w) && w >= vI {
			return nil // (3) superseded
		}
		if layout.IsLocked(w) {
			m.env.Pause() // a concurrent push holds the backup lock
			continue
		}
		// (4) lock the backup copy.
		var prev uint64
		if err := m.pol.Do(m.rec, b, func() error {
			var cerr error
			prev, cerr = m.ep.CompareAndSwap(pagePtr, w, layout.WithLock(w)) //rdmavet:allow caschecked -- prev escapes the retry closure and is compared against w right below
			return cerr
		}); err != nil {
			return err
		}
		if prev != w {
			continue // raced with another push; re-read
		}
		// (5) CAS-fenced epoch re-check under the page lock.
		var eprev uint64
		err := m.pol.Do(m.rec, b, func() error {
			var cerr error
			eprev, cerr = m.ep.CompareAndSwap(epochPtr, e, e) //rdmavet:allow caschecked -- eprev escapes the retry closure and is compared against e right below
			return cerr
		})
		if err == nil && eprev != e {
			m.restore(b, pagePtr, w)
			return m.groupMoved(home, eprev)
		}
		if err == nil {
			// (6) body, (7) publish word0 = vI.
			err = m.pol.Do(m.rec, b, func() error {
				return m.ep.Write(pagePtr.Add(8), img[1:])
			})
			if err == nil {
				err = m.pol.Do(m.rec, b, func() error {
					return m.ep.Write(pagePtr, img[:1])
				})
				if err == nil {
					return nil
				}
			}
		}
		m.restore(b, pagePtr, w)
		return err
	}
	return fmt.Errorf("repl: backup %d page %#x lock-starved after %d attempts: %w",
		b, off, mirrorLockBudget, rdma.ErrTimeout)
}

// restore releases the backup page lock after a failed push, putting the
// pre-push word back. Best-effort: if the member just died the push error
// is already propagating and the copy is dead anyway.
func (m *Mirrorer) restore(b int, pagePtr rdma.RemotePtr, w uint64) (restored bool) {
	var prev uint64
	err := m.pol.Do(m.rec, b, func() error {
		var cerr error
		prev, cerr = m.ep.CompareAndSwap(pagePtr, layout.WithLock(w), w) //rdmavet:allow caschecked -- prev escapes the retry closure; the unlock outcome is the function's return value
		return cerr
	})
	return err == nil && prev == layout.WithLock(w)
}

// epochGuard verifies the member still carries the client's epoch for home
// before a blind push.
func (m *Mirrorer) epochGuard(home, b int, e uint64) error {
	if err := m.pol.Do(m.rec, b, func() error {
		return m.ep.Read(nam.GroupEpochPtr(b, home), m.epbuf[:])
	}); err != nil {
		return err
	}
	if m.epbuf[0] != e {
		return m.groupMoved(home, m.epbuf[0])
	}
	return nil
}

// MirrorFresh implements btree.Replicator: a blind full-page write. Safe
// without the versioned protocol because the page has never been published
// (no reader can reach it, allocator pointers are unique, and the parent
// pointer that would publish it is itself mirrored by a versioned, fenced
// push — so a stale fresh write after a promotion leaves unreachable bytes,
// never a reachable stale page).
func (m *Mirrorer) MirrorFresh(p rdma.RemotePtr, img []uint64) error {
	home := p.Server()
	e := m.view.Epoch(home)
	return m.targets(home, func(b int) error {
		if err := m.epochGuard(home, b, e); err != nil {
			return err
		}
		return m.pol.Do(m.rec, b, func() error {
			return m.ep.Write(rdma.MakePtr(b, p.Offset()), img)
		})
	})
}

// MirrorWord implements btree.Replicator: a blind single-word write (root
// pointer updates). A lost or stale root word on a backup is benign — B-link
// descents recover through right links — so no versioning is needed, only
// the epoch guard against writing into a promoted group.
func (m *Mirrorer) MirrorWord(p rdma.RemotePtr, val uint64) error {
	home := p.Server()
	e := m.view.Epoch(home)
	m.w0buf[0] = val
	return m.targets(home, func(b int) error {
		if err := m.epochGuard(home, b, e); err != nil {
			return err
		}
		return m.pol.Do(m.rec, b, func() error {
			return m.ep.Write(rdma.MakePtr(b, p.Offset()), m.w0buf[:])
		})
	})
}

// Push replays a batch of server-captured post-images (the Dirty trailer of
// an RPC response) through the mirror protocol — the client-assisted
// replication path of the RPC designs.
func (m *Mirrorer) Push(dirty []nam.DirtyPage) error {
	for _, d := range dirty {
		var err error
		switch d.Kind {
		case nam.DirtyFresh:
			err = m.MirrorFresh(d.Ptr, d.Words)
		case nam.DirtyWord:
			err = m.MirrorWord(d.Ptr, d.Words[0])
		default:
			err = m.MirrorPage(d.Ptr, d.Words)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Capture implements btree.Replicator by recording post-images instead of
// pushing them: the RPC handlers of the coarse and hybrid designs attach a
// Capture to their per-request tree handle and ship the recorded images
// back in the response's Dirty trailer, because memory servers cannot reach
// each other (NAM keeps servers passive) — the requesting client does the
// pushing before it acks.
type Capture struct {
	Pages []nam.DirtyPage
}

// MirrorPage implements btree.Replicator.
func (c *Capture) MirrorPage(p rdma.RemotePtr, img []uint64) error {
	c.Pages = append(c.Pages, nam.DirtyPage{Kind: nam.DirtyFull, Ptr: p, Words: append([]uint64(nil), img...)})
	return nil
}

// MirrorFresh implements btree.Replicator.
func (c *Capture) MirrorFresh(p rdma.RemotePtr, img []uint64) error {
	c.Pages = append(c.Pages, nam.DirtyPage{Kind: nam.DirtyFresh, Ptr: p, Words: append([]uint64(nil), img...)})
	return nil
}

// MirrorWord implements btree.Replicator.
func (c *Capture) MirrorWord(p rdma.RemotePtr, val uint64) error {
	c.Pages = append(c.Pages, nam.DirtyPage{Kind: nam.DirtyWord, Ptr: p, Words: []uint64{val}})
	return nil
}
