package repl

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
)

// The functions here are quiesced operator steps — no index traffic may be
// in flight — mirroring the repository's RecoverLocks precedent: the in-run
// recovery ladder handles routing and promotion; bulk data movement
// (initial replica seeding after a bulk load, re-replicating a lost slab
// from survivors) runs between runs with direct region access.

// copyExtent copies [lo, hi) plus group home's root/epoch words from src to
// dst, returning the number of words moved.
func copyExtent(home int, lo, hi uint64, src, dst *rdma.Server) int {
	n := 0
	if hi > lo {
		buf := make([]uint64, (hi-lo)/8)
		src.Region.Read(lo, buf)
		dst.Region.Write(lo, buf)
		n += len(buf)
	}
	var meta [2]uint64 // root word, epoch word (contiguous)
	src.Region.Read(nam.GroupRootOff(home), meta[:])
	dst.Region.Write(nam.GroupRootOff(home), meta[:])
	return n + 2
}

// slabExtent returns the used extent of home's slab: from the slab start to
// the home allocator's watermark (every page ever handed out lies below
// it). After a failover no new pages join the slab — allocation redirects
// to live groups — so the pre-loss watermark stays authoritative.
func slabExtent(lay nam.ReplicaLayout, home int, srv func(i int) *rdma.Server) (lo, hi uint64) {
	lo = lay.SlabLo(home)
	hi = srv(home).Alloc.Watermark()
	if hi < lo {
		hi = lo
	}
	if max := lay.SlabHi(home); hi > max {
		hi = max
	}
	return lo, hi
}

// SyncReplicas seeds the backups after a bulk load: every home server's
// used slab extent and group metadata words are copied verbatim onto its
// k-1 backups. Identity offsets make this a straight memcpy per backup.
func SyncReplicas(lay nam.ReplicaLayout, srv func(i int) *rdma.Server) int {
	words := 0
	for h := 0; h < lay.Groups.Servers(); h++ {
		lo, hi := slabExtent(lay, h, srv)
		for _, b := range lay.Groups.Backups(h) {
			words += copyExtent(h, lo, hi, srv(h), srv(b))
		}
	}
	return words
}

// RebuildMember re-replicates every group extent that member should hold
// from that group's current acting primary — the post-crash rebuild of a
// server that came back empty (re-registered region). actingOf names the
// authoritative member per group (from a post-run View or an operator).
// Returns the number of words copied.
func RebuildMember(lay nam.ReplicaLayout, member int, actingOf func(home int) int, srv func(i int) *rdma.Server) (int, error) {
	words := 0
	for _, home := range lay.Groups.GroupsOf(member) {
		src := actingOf(home)
		if src == member {
			continue // member is the group's own authority; nothing to pull
		}
		if !lay.Groups.Member(home, src) {
			return words, fmt.Errorf("repl: acting server %d is not a member of group %d", src, home)
		}
		lo, hi := slabExtent(lay, home, srv)
		words += copyExtent(home, lo, hi, srv(src), srv(member))
	}
	return words, nil
}

// DiffExtent compares member's copy of group home's used extent (pages plus
// metadata words) against reference's, returning the number of differing
// words — 0 proves the rebuild produced a byte-identical replica.
func DiffExtent(lay nam.ReplicaLayout, home int, reference, member *rdma.Server, srv func(i int) *rdma.Server) int {
	lo, hi := slabExtent(lay, home, srv)
	diff := 0
	if hi > lo {
		a := make([]uint64, (hi-lo)/8)
		b := make([]uint64, (hi-lo)/8)
		reference.Region.Read(lo, a)
		member.Region.Read(lo, b)
		for i := range a {
			if a[i] != b[i] {
				diff++
			}
		}
	}
	var ma, mb [2]uint64
	reference.Region.Read(nam.GroupRootOff(home), ma[:])
	member.Region.Read(nam.GroupRootOff(home), mb[:])
	for i := range ma {
		if ma[i] != mb[i] {
			diff++
		}
	}
	return diff
}
