// Package repl implements k-way page replication for the NAM memory tier:
// the layer that turns rdma.ErrServerLost from a permanent index death into
// a recoverable failover.
//
// # Layout
//
// Replication relies on the identity-offset slab layout of
// nam.ReplicaLayout: server i allocates pages only inside its private slab,
// and every page at (server i, offset o) is mirrored to (backup b, offset o)
// on the k-1 servers following i. Group metadata (root-pointer word and
// failover epoch word) lives at group-unique offsets in the reserved region
// prefix, likewise present on every member.
//
// # Write path
//
// Writes keep the paper's one-sided protocol against the acting primary
// unchanged; after a page's unlock FETCH_AND_ADD publishes the new version,
// the committed post-image is pushed to the live backups with plain WRITEs
// under a short per-page backup lock (Mirrorer). Every push is fenced by the
// group's epoch word: a CAS re-check of the epoch while the backup page lock
// is held guarantees a client that has not observed a failover can never
// install a stale primary's image over a promoted replica's state
// (rdma.ErrGroupMoved). Pushes carry the published page version, so
// concurrent pushes of the same page are idempotent and ordered (a backup
// already at version >= the pushed one wins).
//
// # Read path
//
// Reads stay exactly one READ: they target the group's acting primary and
// never touch backups, so the replicated read path costs the same RTTs as
// the unreplicated one. Failover re-targets reads by routing (Router), not
// by quorum.
//
// # Failover
//
// When a verb addressed to a group's acting primary fails with
// rdma.ErrServerLost (region loss — globally visible via the server's
// incarnation, never a mere timeout, so promotion cannot split-brain against
// a slow-but-live primary), the Router promotes: it reads the group epoch
// from the surviving members, picks the smallest epoch >= the observed
// maximum whose member is alive, and installs it with first-writer-wins CAS
// on every live member. The acting primary is a pure function of (group,
// epoch), so every client converges on the same replica. The verb then
// fails with rdma.ErrGroupMoved — deliberately not verb-transient: the
// operation aborts, crosses the core.Recovered epoch fence, and re-runs
// from the root under the new routing.
package repl

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/retry"
)

// Events receives replication control-plane events; obs.Log implements it.
// An Events belongs to the same single client goroutine as its Router.
type Events interface {
	// PromotionEvent records a completed promotion: group home moved to
	// epoch, acting is the newly acting primary.
	PromotionEvent(home int, epoch uint64, acting int)
	// GroupMovedEvent records this client observing (and adopting) a newer
	// group epoch during a verb or mirror push — the ErrGroupMoved abort.
	GroupMovedEvent(home int, epoch uint64)
	// MemberDeadEvent records this client marking a group member as lost
	// (mirror pushes to it are skipped from now on — degraded ack).
	MemberDeadEvent(home, member int)
}

// View is one client's replication view: the group epochs it has observed
// and the members it has seen fail. Views are per-client (single goroutine)
// and converge lazily — a stale view is always safe, because the group
// epoch words are the authority and every write path re-checks them.
type View struct {
	lay    nam.ReplicaLayout
	epochs map[int]uint64
	dead   map[int]bool
}

// NewView builds a fresh view (all epochs 0, all members alive).
func NewView(lay nam.ReplicaLayout) *View {
	return &View{lay: lay, epochs: map[int]uint64{}, dead: map[int]bool{}}
}

// Epoch returns the last observed epoch of group home.
func (v *View) Epoch(home int) uint64 { return v.epochs[home] }

// SetEpoch records an observed epoch (monotonic: lower observations are
// ignored).
func (v *View) SetEpoch(home int, e uint64) {
	if e > v.epochs[home] {
		v.epochs[home] = e
	}
}

// Acting returns the acting primary of group home under this view.
func (v *View) Acting(home int) int {
	return v.lay.Groups.PrimaryAt(home, v.epochs[home])
}

// MarkDead records a member observed lost.
func (v *View) MarkDead(server int) { v.dead[server] = true }

// Dead reports whether server has been observed lost.
func (v *View) Dead(server int) bool { return v.dead[server] }

// Router is the replication-aware rdma.Endpoint decorator: it re-targets
// home-addressed verbs to the group's acting primary and turns
// ErrServerLost on a group's primary into promotion + ErrGroupMoved.
//
// Stacking order (outermost first): retry.Wrap -> Router -> faultnet ->
// transport. The Router sits *below* the client's retry policy so the
// policy's bounded transient retries re-route through it each attempt, and
// runs its own internal retry policy for promotion verbs (reading and
// CASing epoch words must survive the same fault schedule as everything
// else).
//
// Pointers whose encoded server is NOT the home of their offset's slab are
// explicit replica accesses (mirror pushes, epoch reads): they pass through
// untranslated, and their failures never trigger promotion — the Mirrorer
// handles them by marking the member dead.
//
// Like every endpoint, a Router is owned by a single client goroutine.
type Router struct {
	inner rdma.Endpoint
	lay   nam.ReplicaLayout
	view  *View
	pol   *retry.Policy
	rec   rdma.Reconnector // inner's literal reconnector (may be nil)

	// Events receives promotion events; may be nil.
	Events Events

	routedBuf []rdma.RemotePtr
}

var _ rdma.Endpoint = (*Router)(nil)
var _ rdma.Reconnector = (*Router)(nil)

// NewRouter wraps inner. pol is the internal policy for the Router's own
// promotion verbs (nil gets defaults); it is separate from the client's
// outer policy so promotion does not consume the failing operation's retry
// budget.
func NewRouter(inner rdma.Endpoint, lay nam.ReplicaLayout, view *View, pol *retry.Policy) *Router {
	if view == nil {
		view = NewView(lay)
	}
	if pol == nil {
		pol = &retry.Policy{}
	}
	rec, _ := inner.(rdma.Reconnector)
	return &Router{inner: inner, lay: lay, view: view, pol: pol, rec: rec}
}

// View returns the router's (shared) view, for the Mirrorer and for
// harness inspection.
func (r *Router) View() *View { return r.view }

// homeOf returns the home group of p if p is home-addressed (the routed
// case), or -1 for legacy-superblock and explicit-replica pointers.
func (r *Router) homeOf(p rdma.RemotePtr) int {
	if p.IsNull() {
		return -1
	}
	h := r.lay.HomeOf(p.Offset())
	if h < 0 || p.Server() != h {
		return -1
	}
	return h
}

// route translates a home-addressed pointer to the acting primary.
func (r *Router) route(p rdma.RemotePtr) rdma.RemotePtr {
	h := r.homeOf(p)
	if h < 0 {
		return p
	}
	if act := r.view.Acting(h); act != h {
		return rdma.MakePtr(act, p.Offset())
	}
	return p
}

// do1 runs verb against the routed target of p, promoting p's group when
// the acting primary turns out to be lost.
func (r *Router) do1(p rdma.RemotePtr, verb func(q rdma.RemotePtr) error) error {
	q := r.route(p)
	err := verb(q)
	if err == nil || !errors.Is(err, rdma.ErrServerLost) {
		return err
	}
	h := r.homeOf(p)
	if h < 0 {
		return err // explicit replica access: the caller owns the failure
	}
	return r.promote(h, q.Server())
}

// Read implements rdma.Endpoint.
func (r *Router) Read(p rdma.RemotePtr, dst []uint64) error {
	return r.do1(p, func(q rdma.RemotePtr) error { return r.inner.Read(q, dst) })
}

// ReadMulti implements rdma.Endpoint: each pointer is routed independently.
// On ErrServerLost the failed server is not identified by the batch, so the
// router probes the acting primary of every home-routed group in the batch
// and promotes the lost ones.
func (r *Router) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	routed := r.routedBuf[:0]
	for _, p := range ps {
		routed = append(routed, r.route(p))
	}
	r.routedBuf = routed
	err := r.inner.ReadMulti(routed, dst)
	if err == nil || !errors.Is(err, rdma.ErrServerLost) {
		return err
	}
	var moved error
	seen := map[int]bool{}
	for _, p := range ps {
		h := r.homeOf(p)
		if h < 0 || seen[h] {
			continue
		}
		seen[h] = true
		act := r.view.Acting(h)
		var w [1]uint64
		perr := r.pol.Do(r.rec, act, func() error {
			return r.inner.Read(nam.GroupEpochPtr(act, h), w[:])
		})
		if errors.Is(perr, rdma.ErrServerLost) {
			if merr := r.promote(h, act); errors.Is(merr, rdma.ErrGroupMoved) {
				moved = merr
			} else {
				return merr
			}
		}
	}
	if moved != nil {
		return moved
	}
	return err
}

// Write implements rdma.Endpoint.
func (r *Router) Write(p rdma.RemotePtr, src []uint64) error {
	return r.do1(p, func(q rdma.RemotePtr) error { return r.inner.Write(q, src) })
}

// CompareAndSwap implements rdma.Endpoint.
func (r *Router) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	var prev uint64
	err := r.do1(p, func(q rdma.RemotePtr) error {
		var e error
		prev, e = r.inner.CompareAndSwap(q, old, new) //rdmavet:allow caschecked -- decorator pass-through: prev is returned verbatim and checked at the caller's call site
		return e
	})
	return prev, err
}

// FetchAdd implements rdma.Endpoint.
func (r *Router) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	var prev uint64
	err := r.do1(p, func(q rdma.RemotePtr) error {
		var e error
		prev, e = r.inner.FetchAdd(q, delta)
		return e
	})
	return prev, err
}

// Alloc implements rdma.Endpoint. Allocation is location-transparent for
// the index (a page's home is whatever the returned pointer encodes), so
// when the requested server's group has failed over — its slab allocator
// died with it — the router redirects to a group that still has its home
// primary: the new page simply joins that live group.
func (r *Router) Alloc(server int, n int) (rdma.RemotePtr, error) {
	s := server
	for i := 0; i < r.lay.Groups.Servers(); i++ {
		if r.view.Acting(s) == s && !r.view.Dead(s) {
			break
		}
		s = (s + 1) % r.lay.Groups.Servers()
	}
	if r.view.Acting(s) != s || r.view.Dead(s) {
		return rdma.NullPtr, fmt.Errorf("repl: no live home server for alloc: %w", rdma.ErrServerLost)
	}
	p, err := r.inner.Alloc(s, n)
	if err != nil && errors.Is(err, rdma.ErrServerLost) {
		return rdma.NullPtr, r.promote(s, s)
	}
	return p, err
}

// Free implements rdma.Endpoint. Freeing a page whose home group has failed
// over is skipped: the allocator authoritative for that slab died with the
// primary, and re-targeting a Free at a backup would corrupt the backup's
// own allocator. The page leaks until the group is rebuilt — GC-tolerable,
// and the rebuild recopies allocator extents wholesale anyway.
func (r *Router) Free(p rdma.RemotePtr, n int) error {
	if h := r.homeOf(p); h >= 0 && r.view.Acting(h) != h {
		return nil
	}
	err := r.inner.Free(p, n)
	if err != nil && errors.Is(err, rdma.ErrServerLost) {
		if h := r.homeOf(p); h >= 0 {
			return r.promote(h, p.Server())
		}
	}
	return err
}

// Call implements rdma.Endpoint: RPCs are home-addressed by server id, so a
// failed-over group's calls go to the acting primary (which serves the
// group's mirrored pages; the nam.Request Group field tells the handler
// which group to serve).
func (r *Router) Call(server int, req []byte) ([]byte, error) {
	act := r.view.Acting(server)
	resp, err := r.inner.Call(act, req)
	if err != nil && errors.Is(err, rdma.ErrServerLost) {
		return nil, r.promote(server, act)
	}
	return resp, err
}

// NumServers implements rdma.Endpoint.
func (r *Router) NumServers() int { return r.inner.NumServers() }

// Reconnect implements rdma.Reconnector for the *outer* retry layer, whose
// verbs address logical homes: it re-establishes the QP to the server
// currently acting for that home. The Router's own internal verbs (and the
// Mirrorer's) address members literally and use the inner reconnector
// directly.
func (r *Router) Reconnect(server int) error {
	if r.rec == nil {
		return nil
	}
	target, home := server, -1
	if server >= 0 && server < r.lay.Groups.Servers() {
		home = server
		target = r.view.Acting(server)
	}
	err := r.rec.Reconnect(target)
	if err != nil && home >= 0 && errors.Is(err, rdma.ErrServerLost) {
		// The acting primary came back without its region: promote here so
		// the outer retry layer's reconnect path converts the loss into
		// ErrGroupMoved exactly like the verb path does.
		return r.promote(home, target)
	}
	return err
}

// promote drives the failover of group home after observing its acting
// primary lostActing lost. It returns ErrGroupMoved on success (the caller
// must abort its operation and re-run under the new routing), or
// ErrServerLost when every member of the group is gone (a genuine k-fault
// data loss).
func (r *Router) promote(home, lostActing int) error {
	r.view.MarkDead(lostActing)
	if r.Events != nil {
		r.Events.MemberDeadEvent(home, lostActing)
	}
	members := r.lay.Groups.Members(home)
	k := uint64(len(members))

	// Observe the highest epoch any surviving member has recorded; a
	// concurrent promoter may already have moved the group.
	eMax := r.view.Epoch(home)
	alive := 0
	for _, m := range members {
		if r.view.Dead(m) {
			continue
		}
		var w [1]uint64
		err := r.pol.Do(r.rec, m, func() error {
			return r.inner.Read(nam.GroupEpochPtr(m, home), w[:])
		})
		if errors.Is(err, rdma.ErrServerLost) {
			r.view.MarkDead(m)
			if r.Events != nil {
				r.Events.MemberDeadEvent(home, m)
			}
			continue
		}
		if err != nil {
			return err
		}
		alive++
		if w[0] > eMax {
			eMax = w[0]
		}
	}
	if alive == 0 {
		return fmt.Errorf("repl: group %d: all %d members lost: %w", home, k, rdma.ErrServerLost)
	}

	// Pick the smallest epoch >= eMax whose acting member this client
	// believes alive. Every promoter lands on the same epoch for the same
	// set of dead members; stragglers converge through the CAS below.
	target := eMax
	for i := uint64(0); i < k; i++ {
		if !r.view.Dead(members[target%k]) {
			break
		}
		target++
	}
	if r.view.Dead(members[target%k]) {
		return fmt.Errorf("repl: group %d: no live member to promote: %w", home, rdma.ErrServerLost)
	}

	// Install target on every live member, first-writer-wins per word: a
	// loser adopts whatever higher epoch it observes. Once any member's
	// epoch word moves, mirror pushes fenced on the old epoch abort there.
	final := target
	for _, m := range members {
		if r.view.Dead(m) {
			continue
		}
		ptr := nam.GroupEpochPtr(m, home)
		for attempt := 0; attempt < 8; attempt++ {
			var cur [1]uint64
			err := r.pol.Do(r.rec, m, func() error { return r.inner.Read(ptr, cur[:]) })
			if err != nil {
				if errors.Is(err, rdma.ErrServerLost) {
					r.view.MarkDead(m)
					break
				}
				return err
			}
			if cur[0] >= target {
				if cur[0] > final {
					final = cur[0]
				}
				break
			}
			var prev uint64
			err = r.pol.Do(r.rec, m, func() error {
				var e error
				prev, e = r.inner.CompareAndSwap(ptr, cur[0], target) //rdmavet:allow caschecked -- prev escapes the retry closure; first-writer-wins check (prev == cur[0]) follows below
				return e
			})
			if err != nil {
				if errors.Is(err, rdma.ErrServerLost) {
					r.view.MarkDead(m)
					break
				}
				return err
			}
			if prev == cur[0] {
				break // installed
			}
			// Lost the CAS to a concurrent promoter; re-read and adopt.
		}
	}
	r.view.SetEpoch(home, final)
	acting := r.view.Acting(home)
	if r.Events != nil {
		r.Events.PromotionEvent(home, final, acting)
	}
	return fmt.Errorf("repl: group %d promoted to epoch %d (acting server %d): %w",
		home, final, acting, rdma.ErrGroupMoved)
}
