package repl

import (
	"errors"
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/faultnet"
	"github.com/namdb/rdmatree/internal/rdma/retry"
)

const testRegion = 1 << 16

// fixture builds a direct fabric with slab-partitioned allocators, the shape
// every replicated deployment uses.
func fixture(t *testing.T, servers, replicas int) (*direct.Fabric, nam.ReplicaLayout) {
	t.Helper()
	lay := nam.NewReplicaLayout(servers, replicas, testRegion)
	fab := direct.New(servers, testRegion, int(lay.Reserved()))
	for i := 0; i < servers; i++ {
		fab.Server(i).Alloc = rdma.NewAllocator(lay.SlabLo(i), lay.SlabHi(i))
	}
	return fab, lay
}

func TestRouterRoutesToActing(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	r := NewRouter(fab.Endpoint(), lay, nil, nil)

	p := rdma.MakePtr(1, lay.SlabLo(1))
	src := []uint64{0xdead}
	if err := r.Write(p, src); err != nil {
		t.Fatal(err)
	}
	var got [1]uint64
	fab.Server(1).Region.Read(p.Offset(), got[:])
	if got[0] != 0xdead {
		t.Fatalf("epoch-0 write landed elsewhere: %#x", got[0])
	}

	// After a failover of group 1 (epoch 1 -> acting member is server 2),
	// home-addressed verbs re-target to server 2 at the identity offset.
	r.View().SetEpoch(1, 1)
	src[0] = 0xbeef
	if err := r.Write(p, src); err != nil {
		t.Fatal(err)
	}
	fab.Server(2).Region.Read(p.Offset(), got[:])
	if got[0] != 0xbeef {
		t.Fatalf("failed-over write not on acting primary: %#x", got[0])
	}
	fab.Server(1).Region.Read(p.Offset(), got[:])
	if got[0] != 0xdead {
		t.Fatalf("failed-over write still hit the old primary: %#x", got[0])
	}
}

func TestRouterExplicitReplicaPassthrough(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	r := NewRouter(fab.Endpoint(), lay, nil, nil)
	r.View().SetEpoch(1, 1)

	// A pointer addressing member 2's copy of a group-1 offset is an
	// explicit replica access: never re-routed, even after the failover.
	p := rdma.MakePtr(2, lay.SlabLo(1)+8)
	if err := r.Write(p, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	var got [1]uint64
	fab.Server(2).Region.Read(p.Offset(), got[:])
	if got[0] != 7 {
		t.Fatalf("explicit replica write translated away: %#x", got[0])
	}

	// Legacy superblock offsets are not group-addressed either.
	if err := r.Write(rdma.MakePtr(1, 0), []uint64{9}); err != nil {
		t.Fatal(err)
	}
	fab.Server(1).Region.Read(0, got[:])
	if got[0] != 9 {
		t.Fatalf("superblock write translated away: %#x", got[0])
	}
}

type eventLog struct {
	promotions int
	moved      int
	dead       int
}

func (l *eventLog) PromotionEvent(home int, epoch uint64, acting int) { l.promotions++ }
func (l *eventLog) GroupMovedEvent(home int, epoch uint64)            { l.moved++ }
func (l *eventLog) MemberDeadEvent(home, member int)                  { l.dead++ }

func TestRouterPromotesOnServerLost(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	p := rdma.MakePtr(1, lay.SlabLo(1))
	fab.Server(1).Region.Write(p.Offset(), []uint64{41})
	fab.Server(2).Region.Write(p.Offset(), []uint64{41}) // mirrored copy

	// Server 1 crashes at the first verb and restarts two ticks later
	// without its region.
	net := faultnet.New(faultnet.Schedule{
		Seed:  7,
		Steps: []faultnet.Step{{AtTick: 1, Server: 1, DownForTicks: 2, Lose: true}},
	}, nil)
	fep := net.Endpoint(fab.Endpoint(), 0)
	router := NewRouter(fep, lay, nil, &retry.Policy{Seed: 1})
	ev := &eventLog{}
	router.Events = ev

	pol := (&retry.Policy{Seed: 2}).Defaults()
	var dst [1]uint64
	err := pol.Do(router, 1, func() error { return router.Read(p, dst[:]) })
	if !errors.Is(err, rdma.ErrGroupMoved) {
		t.Fatalf("want ErrGroupMoved, got %v", err)
	}
	if got := router.View().Epoch(1); got != 1 {
		t.Fatalf("epoch after promotion = %d, want 1", got)
	}
	if got := router.View().Acting(1); got != 2 {
		t.Fatalf("acting after promotion = %d, want 2", got)
	}
	if ev.promotions != 1 {
		t.Fatalf("promotion events = %d, want 1", ev.promotions)
	}
	// The survivor carries the CAS-installed epoch.
	var w [1]uint64
	fab.Server(2).Region.Read(nam.GroupEpochOff(1), w[:])
	if w[0] != 1 {
		t.Fatalf("survivor epoch word = %d, want 1", w[0])
	}

	// The re-run operation reads the mirrored data from the new primary.
	if err := pol.Do(router, 1, func() error { return router.Read(p, dst[:]) }); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 41 {
		t.Fatalf("post-failover read = %d, want 41", dst[0])
	}
}

func TestRouterDoubleFaultIsPermanent(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	net := faultnet.New(faultnet.Schedule{
		Seed: 7,
		Steps: []faultnet.Step{
			{AtTick: 1, Server: 1, DownForTicks: 1, Lose: true},
			{AtTick: 2, Server: 2, DownForTicks: 1, Lose: true},
		},
	}, nil)
	router := NewRouter(net.Endpoint(fab.Endpoint(), 0), lay, nil, &retry.Policy{Seed: 1})

	// Both members of group 1 lose their regions: promotion must report a
	// genuine k-fault loss, not spin or invent a primary.
	pol := (&retry.Policy{Seed: 2}).Defaults()
	var dst [1]uint64
	p := rdma.MakePtr(1, lay.SlabLo(1))
	var err error
	for i := 0; i < 4; i++ {
		err = pol.Do(router, 1, func() error { return router.Read(p, dst[:]) })
		if errors.Is(err, rdma.ErrServerLost) {
			return
		}
	}
	t.Fatalf("double fault did not surface ErrServerLost: %v", err)
}

func TestRouterAllocRedirect(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	r := NewRouter(fab.Endpoint(), lay, nil, nil)
	r.View().SetEpoch(0, 1) // group 0 failed over: its slab allocator is gone

	p, err := r.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Server() == 0 || lay.HomeOf(p.Offset()) != p.Server() {
		t.Fatalf("alloc after failover returned %v (server %d, home %d)",
			p, p.Server(), lay.HomeOf(p.Offset()))
	}
	// Freeing a page of the failed-over group is a documented no-op.
	if err := r.Free(rdma.MakePtr(0, lay.SlabLo(0)), 64); err != nil {
		t.Fatal(err)
	}
	_ = fab
}

func TestMirrorPageVersionedPush(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	router := NewRouter(fab.Endpoint(), lay, nil, nil)
	m := NewMirrorer(router, rdma.NopEnv{}, nil)

	off := lay.SlabLo(0)
	p := rdma.MakePtr(0, off)
	img := make([]uint64, 8)
	layout.SetBufVersion(img, 4)
	for i := 1; i < len(img); i++ {
		img[i] = uint64(100 + i)
	}
	if err := m.MirrorPage(p, img); err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, 8)
	fab.Server(1).Region.Read(off, got)
	for i := range img {
		if got[i] != img[i] {
			t.Fatalf("backup word %d = %d, want %d", i, got[i], img[i])
		}
	}

	// A stale push (lower version) is superseded and must not clobber.
	stale := make([]uint64, 8)
	layout.SetBufVersion(stale, 2)
	if err := m.MirrorPage(p, stale); err != nil {
		t.Fatal(err)
	}
	fab.Server(1).Region.Read(off, got)
	if got[1] != img[1] {
		t.Fatalf("stale push clobbered backup: word 1 = %d", got[1])
	}

	// An epoch moved underneath the client aborts the push with
	// ErrGroupMoved and adopts the observed epoch.
	fab.Server(1).Region.Write(nam.GroupEpochOff(0), []uint64{3})
	fresh := make([]uint64, 8)
	layout.SetBufVersion(fresh, 6)
	err := m.MirrorPage(p, fresh)
	if !errors.Is(err, rdma.ErrGroupMoved) {
		t.Fatalf("want ErrGroupMoved, got %v", err)
	}
	if e := router.View().Epoch(0); e != 3 {
		t.Fatalf("adopted epoch = %d, want 3", e)
	}
	fab.Server(1).Region.Read(off, got)
	if got[0] != 4 {
		t.Fatalf("aborted push left backup word0 = %d, want 4", got[0])
	}
}

func TestMirrorDegradedAck(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	// Backup 1 (of group 0) is lost immediately.
	net := faultnet.New(faultnet.Schedule{
		Seed:  3,
		Steps: []faultnet.Step{{AtTick: 1, Server: 1, DownForTicks: 0, Lose: true}},
	}, nil)
	router := NewRouter(net.Endpoint(fab.Endpoint(), 0), lay, nil, &retry.Policy{Seed: 1})
	ev := &eventLog{}
	m := NewMirrorer(router, rdma.NopEnv{}, &retry.Policy{Seed: 2})
	m.Events = ev

	img := make([]uint64, 4)
	layout.SetBufVersion(img, 2)
	// The push must succeed despite the dead backup (degraded ack) and mark
	// the member dead so later pushes skip it.
	if err := m.MirrorPage(rdma.MakePtr(0, lay.SlabLo(0)), img); err != nil {
		t.Fatal(err)
	}
	if !router.View().Dead(1) {
		t.Fatal("dead backup not marked in view")
	}
	if ev.dead == 0 {
		t.Fatal("no MemberDeadEvent emitted")
	}
	_ = fab
}

func TestMirrorFreshAndWord(t *testing.T) {
	fab, lay := fixture(t, 3, 3)
	router := NewRouter(fab.Endpoint(), lay, nil, nil)
	m := NewMirrorer(router, rdma.NopEnv{}, nil)

	off := lay.SlabLo(0) + 64
	img := []uint64{2, 5, 6}
	if err := m.MirrorFresh(rdma.MakePtr(0, off), img); err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, 3)
	for _, b := range []int{1, 2} {
		fab.Server(b).Region.Read(off, got)
		if got[0] != 2 || got[2] != 6 {
			t.Fatalf("backup %d fresh image = %v", b, got)
		}
	}
	if err := m.MirrorWord(nam.GroupRootPtr(0), 0x77); err != nil {
		t.Fatal(err)
	}
	var w [1]uint64
	fab.Server(2).Region.Read(nam.GroupRootOff(0), w[:])
	if w[0] != 0x77 {
		t.Fatalf("root word mirror = %#x", w[0])
	}
}

func TestCaptureRecordsPostImages(t *testing.T) {
	c := &Capture{}
	img := []uint64{4, 9}
	if err := c.MirrorPage(rdma.MakePtr(0, 128), img); err != nil {
		t.Fatal(err)
	}
	img[1] = 0 // the capture must have deep-copied
	if err := c.MirrorFresh(rdma.MakePtr(1, 256), []uint64{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.MirrorWord(rdma.MakePtr(0, 64), 5); err != nil {
		t.Fatal(err)
	}
	if len(c.Pages) != 3 {
		t.Fatalf("captured %d pages", len(c.Pages))
	}
	if c.Pages[0].Kind != nam.DirtyFull || c.Pages[0].Words[1] != 9 {
		t.Fatalf("page capture = %+v", c.Pages[0])
	}
	if c.Pages[1].Kind != nam.DirtyFresh || c.Pages[2].Kind != nam.DirtyWord {
		t.Fatalf("kinds = %d, %d", c.Pages[1].Kind, c.Pages[2].Kind)
	}
}

func TestSyncRebuildDiff(t *testing.T) {
	fab, lay := fixture(t, 3, 2)
	srv := func(i int) *rdma.Server { return fab.Server(i) }

	// Populate each home slab with distinct data through its allocator.
	for h := 0; h < 3; h++ {
		for j := 0; j < 4; j++ {
			off, err := fab.Server(h).Alloc.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]uint64, 8)
			for i := range buf {
				buf[i] = uint64(h*1000 + j*10 + i)
			}
			fab.Server(h).Region.Write(off, buf)
		}
		fab.Server(h).Region.Write(nam.GroupRootOff(h), []uint64{uint64(h + 1), 0})
	}

	if words := SyncReplicas(lay, srv); words == 0 {
		t.Fatal("SyncReplicas copied nothing")
	}
	for h := 0; h < 3; h++ {
		b := lay.Groups.Backups(h)[0]
		if d := DiffExtent(lay, h, fab.Server(h), fab.Server(b), srv); d != 0 {
			t.Fatalf("group %d backup %d differs in %d words after sync", h, b, d)
		}
	}

	// Server 1 loses everything; group 1 failed over to server 2. Rebuild
	// member 1 from the acting primaries.
	fab.Server(1).Region.Zero()
	actingOf := func(home int) int {
		if home == 1 {
			return 2
		}
		return home
	}
	if _, err := RebuildMember(lay, 1, actingOf, srv); err != nil {
		t.Fatal(err)
	}
	if d := DiffExtent(lay, 0, fab.Server(0), fab.Server(1), srv); d != 0 {
		t.Fatalf("rebuilt member differs from group 0 authority in %d words", d)
	}
	if d := DiffExtent(lay, 1, fab.Server(2), fab.Server(1), srv); d != 0 {
		t.Fatalf("rebuilt member differs from group 1 authority in %d words", d)
	}

	// An actingOf outside the group is a caller bug and must be rejected.
	if _, err := RebuildMember(lay, 1, func(int) int { return 0 }, srv); err == nil {
		t.Fatal("RebuildMember accepted a non-member authority")
	}
}
