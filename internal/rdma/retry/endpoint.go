package retry

import (
	"github.com/namdb/rdmatree/internal/rdma"
)

// Wrap decorates inner so every verb issued through it runs under the
// policy: transient failures retried with bounded jittered backoff, QP
// errors healed through the inner endpoint's Reconnector (when it has one).
// This is the single retry surface shared by the coarse, fine, and hybrid
// clients; stack it directly over the transport (or over faultnet), under
// the telemetry decorator if per-verb latencies should include retries.
//
// Like every endpoint, the wrapper is owned by one client goroutine.
func Wrap(inner rdma.Endpoint, p *Policy) *Endpoint {
	p.Defaults()
	rec, _ := inner.(rdma.Reconnector)
	return &Endpoint{inner: inner, policy: p, rec: rec}
}

// Endpoint is the retrying rdma.Endpoint decorator built by Wrap.
type Endpoint struct {
	inner  rdma.Endpoint
	policy *Policy
	rec    rdma.Reconnector
}

var _ rdma.Endpoint = (*Endpoint)(nil)
var _ rdma.Reconnector = (*Endpoint)(nil)

// Reconnect implements rdma.Reconnector by delegating to the inner endpoint
// (no-op success when it cannot reconnect), so further decorators keep the
// capability visible.
func (e *Endpoint) Reconnect(server int) error {
	if e.rec == nil {
		return nil
	}
	return e.rec.Reconnect(server)
}

// Read implements rdma.Endpoint.
func (e *Endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	return e.policy.Do(e.rec, p.Server(), func() error {
		return e.inner.Read(p, dst)
	})
}

// ReadMulti implements rdma.Endpoint. Reconnect targets the first pointer's
// server; a QP error on another server in the batch heals on the retry that
// fails against it directly.
func (e *Endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	server := 0
	if len(ps) > 0 {
		server = ps[0].Server()
	}
	return e.policy.Do(e.rec, server, func() error {
		return e.inner.ReadMulti(ps, dst)
	})
}

// Write implements rdma.Endpoint.
func (e *Endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	return e.policy.Do(e.rec, p.Server(), func() error {
		return e.inner.Write(p, src)
	})
}

// CompareAndSwap implements rdma.Endpoint. Retrying a failed CAS is safe
// because a transiently failed verb was never executed remotely (package
// doc); the returned prior value is always from the attempt that executed.
func (e *Endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	var prev uint64
	err := e.policy.Do(e.rec, p.Server(), func() error {
		var verr error
		prev, verr = e.inner.CompareAndSwap(p, old, new) //rdmavet:allow caschecked -- decorator pass-through: prev is returned verbatim and checked at the caller's call site
		return verr
	})
	return prev, err
}

// FetchAdd implements rdma.Endpoint.
func (e *Endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	var prev uint64
	err := e.policy.Do(e.rec, p.Server(), func() error {
		var verr error
		prev, verr = e.inner.FetchAdd(p, delta)
		return verr
	})
	return prev, err
}

// Alloc implements rdma.Endpoint.
func (e *Endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	var ptr rdma.RemotePtr
	err := e.policy.Do(e.rec, server, func() error {
		var verr error
		ptr, verr = e.inner.Alloc(server, n)
		return verr
	})
	return ptr, err
}

// Free implements rdma.Endpoint.
func (e *Endpoint) Free(p rdma.RemotePtr, n int) error {
	return e.policy.Do(e.rec, p.Server(), func() error {
		return e.inner.Free(p, n)
	})
}

// Call implements rdma.Endpoint. A transiently failed Call was dropped
// before the handler ran (request-loss model), so re-sending it cannot
// double-execute the RPC.
func (e *Endpoint) Call(server int, req []byte) ([]byte, error) {
	var resp []byte
	err := e.policy.Do(e.rec, server, func() error {
		var verr error
		resp, verr = e.inner.Call(server, req)
		return verr
	})
	return resp, err
}

// NumServers implements rdma.Endpoint.
func (e *Endpoint) NumServers() int { return e.inner.NumServers() }
