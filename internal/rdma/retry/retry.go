// Package retry is the shared verb-level retry policy of every index client:
// bounded exponential backoff with seeded jitter, per-verb attempt deadlines,
// and QP re-establishment after error-state transitions.
//
// The policy is exposed two ways. Policy.Do retries one verb closure; Wrap
// decorates a whole rdma.Endpoint so that every verb issued through it is
// retried under the policy — this is how the coarse, fine, and hybrid clients
// consume it (stacked between faultnet and the protocol code). Raw retry
// loops around verbs anywhere else in the tree are rejected by the rdmavet
// retrynaked analyzer; this package is the single place retries are allowed
// to live.
//
// Retrying a failed verb — including CompareAndSwap and two-sided Calls — is
// safe under this repository's fault model: a verb that reported a transient
// failure was never executed by the remote side (see rdma.ErrTimeout and
// DESIGN.md §9). What bounded verb retries cannot absorb (a crashed server
// mid-operation, retry budget exhaustion) surfaces as a typed transient or
// permanent error, and the clients' operation-level recovery (epoch-fenced
// re-traversal) takes over from there.
//
// The package runs under simnet virtual time, so it never touches the wall
// clock itself: backoff waits go through the injected Policy.Sleep hook (nil
// means yield-only backoff, the right choice for in-process transports).
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Counters receives retry-protocol events; telemetry.Recorder implements it.
// Implementations must be safe for concurrent use.
type Counters interface {
	// CountRetry records one re-attempt of a verb after a transient failure.
	CountRetry()
	// CountReconnect records one successful QP re-establishment.
	CountReconnect()
}

// Events receives per-attempt retry events with their parameters — the
// flight recorder's view of the retry loop, complementing the aggregate
// Counters. obs.Log implements it. An Events belongs to the same single
// client goroutine as the Policy holding it.
type Events interface {
	// RetryEvent records one re-attempt against server after the given
	// backoff wait.
	RetryEvent(server int, backoffNS int64)
	// ReconnectEvent records one QP re-establishment attempt and whether it
	// succeeded.
	ReconnectEvent(server int, ok bool)
}

// Policy is a bounded-backoff retry policy. A Policy belongs to one client
// goroutine (like the Endpoint it drives) and must not be shared.
//
// The zero value is usable: Defaults() values are substituted for unset
// fields on first use.
type Policy struct {
	// MaxAttempts bounds how often one verb is attempted (first try
	// included). Exhausting it returns the last transient error to the
	// caller. Default 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first re-attempt; it doubles per
	// attempt up to MaxDelay. Defaults 2µs / 512µs.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter PRNG: each backoff waits between 50% and 100%
	// of the exponential step. A fixed seed gives a reproducible delay
	// sequence.
	Seed int64
	// Sleep performs the backoff wait. Nil means no wait: the retry loop
	// spins (with the transport's own blocking providing pacing) — correct
	// for in-process transports and for simnet, where wall-clock sleeping
	// would be meaningless. Real deployments (cmd/namclient) inject
	// time.Sleep.
	Sleep func(time.Duration)
	// Counters, when non-nil, receives retry/reconnect events.
	Counters Counters
	// Events, when non-nil, receives per-attempt retry and reconnect events
	// (the flight recorder hook).
	Events Events

	rng *rand.Rand
}

// Defaults fills unset fields in place and returns p.
func (p *Policy) Defaults() *Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 512 * time.Microsecond
	}
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed*0x9e3779b9 + 0x2545f491))
	}
	return p
}

// backoff returns the jittered wait before re-attempt number attempt (1-based)
// and performs it through Sleep.
func (p *Policy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// Jitter in [d/2, d): desynchronizes clients hammering one recovering
	// server without ever collapsing the wait to zero.
	d = d/2 + time.Duration(p.rng.Int63n(int64(d/2)))
	if p.Sleep != nil {
		p.Sleep(d)
	}
	return d
}

// Do runs verb under the policy: transient failures (rdma.IsTransient) are
// retried with backoff up to MaxAttempts; an rdma.ErrQPError additionally
// re-establishes the queue pair to server through rec before the next
// attempt (rec may be nil when the endpoint cannot reconnect — the QP error
// is then surfaced after exhausting attempts). Permanent errors
// (rdma.ErrServerLost, protocol errors) return immediately.
func (p *Policy) Do(rec rdma.Reconnector, server int, verb func() error) error {
	p.Defaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = verb()
		if err == nil || !rdma.IsTransient(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempt, err)
		}
		if p.Counters != nil {
			p.Counters.CountRetry()
		}
		d := p.backoff(attempt)
		if p.Events != nil {
			p.Events.RetryEvent(server, int64(d))
		}
		if errors.Is(err, rdma.ErrQPError) && rec != nil {
			if rerr := p.reconnect(rec, server); rerr != nil {
				return rerr
			}
		}
	}
}

// reconnect re-establishes the QP to server, retrying with backoff while the
// server is down. It consumes the policy's attempt budget independently: a
// server that stays down past MaxAttempts reconnect tries surfaces
// rdma.ErrServerDown to the operation layer.
func (p *Policy) reconnect(rec rdma.Reconnector, server int) error {
	var err error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		err = rec.Reconnect(server)
		if p.Events != nil {
			p.Events.ReconnectEvent(server, err == nil)
		}
		if err == nil {
			if p.Counters != nil {
				p.Counters.CountReconnect()
			}
			return nil
		}
		if !errors.Is(err, rdma.ErrServerDown) {
			// ErrServerLost or a transport-level failure: not recoverable
			// at this layer.
			return err
		}
		p.backoff(attempt)
	}
	return fmt.Errorf("retry: server %d down after %d reconnect attempts: %w",
		server, p.MaxAttempts, err)
}
