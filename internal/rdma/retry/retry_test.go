package retry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/namdb/rdmatree/internal/rdma"
)

// delaysOf runs n backoffs under a fresh policy with the given seed and
// returns the waits passed to Sleep.
func delaysOf(seed int64, n int) []time.Duration {
	var delays []time.Duration
	p := (&Policy{Seed: seed, Sleep: func(d time.Duration) { delays = append(delays, d) }}).Defaults()
	for attempt := 1; attempt <= n; attempt++ {
		p.backoff(attempt)
	}
	return delays
}

// TestBackoffBounds pins the exponential envelope: re-attempt k waits within
// [step/2, step) where step = min(BaseDelay<<(k-1), MaxDelay) — never zero,
// never over MaxDelay.
func TestBackoffBounds(t *testing.T) {
	p := (&Policy{}).Defaults()
	for attempt := 1; attempt <= 20; attempt++ {
		step := p.BaseDelay << (attempt - 1)
		if step > p.MaxDelay || step <= 0 {
			step = p.MaxDelay
		}
		for trial := 0; trial < 50; trial++ {
			d := p.backoff(attempt)
			if d < step/2 || d >= step {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, step/2, step)
			}
		}
	}
}

// TestJitterDeterminism pins the seeding contract: a fixed seed reproduces
// the exact delay sequence, a different seed diverges.
func TestJitterDeterminism(t *testing.T) {
	a := delaysOf(3, 64)
	b := delaysOf(3, 64)
	c := delaysOf(4, 64)
	if len(a) != 64 {
		t.Fatalf("Sleep called %d times, want 64", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// countingCounters tallies retry-protocol events.
type countingCounters struct{ retries, reconnects int }

func (c *countingCounters) CountRetry()     { c.retries++ }
func (c *countingCounters) CountReconnect() { c.reconnects++ }

// TestDoRetriesTransient: transient failures are retried and the verb's
// eventual success is returned; each re-attempt is counted.
func TestDoRetriesTransient(t *testing.T) {
	cnt := &countingCounters{}
	p := &Policy{Seed: 1, Counters: cnt}
	calls := 0
	err := p.Do(nil, 0, func() error {
		calls++
		if calls < 4 {
			return fmt.Errorf("flaky: %w", rdma.ErrTimeout)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 4 || cnt.retries != 3 {
		t.Fatalf("calls=%d retries=%d, want 4 and 3", calls, cnt.retries)
	}
}

// TestDoPermanentImmediate: a permanent error returns without re-attempts.
func TestDoPermanentImmediate(t *testing.T) {
	p := &Policy{Seed: 1}
	calls := 0
	err := p.Do(nil, 0, func() error {
		calls++
		return fmt.Errorf("gone: %w", rdma.ErrServerLost)
	})
	if !errors.Is(err, rdma.ErrServerLost) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want ErrServerLost after 1 call", err, calls)
	}
}

// TestDoExhaustsAttempts: a persistent transient failure consumes exactly
// MaxAttempts verb attempts and surfaces the last error, still typed.
func TestDoExhaustsAttempts(t *testing.T) {
	p := &Policy{MaxAttempts: 5, Seed: 1}
	calls := 0
	err := p.Do(nil, 0, func() error {
		calls++
		return fmt.Errorf("flaky: %w", rdma.ErrTimeout)
	})
	if calls != 5 {
		t.Fatalf("calls=%d, want MaxAttempts=5", calls)
	}
	if !errors.Is(err, rdma.ErrTimeout) || !rdma.IsTransient(err) {
		t.Fatalf("exhaustion must surface the typed transient error, got %v", err)
	}
}

// flapReconnector fails reconnects with downFor ErrServerDowns, then heals.
type flapReconnector struct {
	downFor  int
	attempts int
}

func (r *flapReconnector) Reconnect(server int) error {
	r.attempts++
	if r.attempts <= r.downFor {
		return fmt.Errorf("down: %w", rdma.ErrServerDown)
	}
	return nil
}

// TestDoReconnectsOnQPError: a QP error triggers re-establishment through
// the Reconnector before the next attempt, and the success is counted.
func TestDoReconnectsOnQPError(t *testing.T) {
	cnt := &countingCounters{}
	rec := &flapReconnector{downFor: 2}
	p := &Policy{Seed: 1, Counters: cnt}
	calls := 0
	err := p.Do(rec, 3, func() error {
		calls++
		if calls == 1 {
			return fmt.Errorf("qp: %w", rdma.ErrQPError)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if rec.attempts != 3 || cnt.reconnects != 1 {
		t.Fatalf("reconnect attempts=%d counted=%d, want 3 and 1", rec.attempts, cnt.reconnects)
	}
}

// TestReconnectGivesUp: a server that stays down past the reconnect budget
// surfaces ErrServerDown (transient — the operation layer decides what next).
func TestReconnectGivesUp(t *testing.T) {
	rec := &flapReconnector{downFor: 1 << 30}
	p := &Policy{MaxAttempts: 4, Seed: 1}
	err := p.Do(rec, 1, func() error {
		return fmt.Errorf("qp: %w", rdma.ErrQPError)
	})
	if !errors.Is(err, rdma.ErrServerDown) {
		t.Fatalf("want ErrServerDown after reconnect exhaustion, got %v", err)
	}
	if rec.attempts != 4 {
		t.Fatalf("reconnect attempts=%d, want MaxAttempts=4", rec.attempts)
	}
}

// TestWrapRetries: the endpoint decorator runs verbs under the policy and
// recovers a flaky inner endpoint transparently.
func TestWrapRetries(t *testing.T) {
	inner := &flakyEndpoint{failFirst: 2}
	ep := Wrap(inner, &Policy{Seed: 1})
	if _, err := ep.CompareAndSwap(rdma.MakePtr(1, 64), 7, 8); err != nil {
		t.Fatalf("CAS through retry wrapper: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner saw %d attempts, want 3", inner.calls)
	}
}

// flakyEndpoint fails its first failFirst verbs with ErrTimeout.
type flakyEndpoint struct {
	calls     int
	failFirst int
}

func (f *flakyEndpoint) verb() error {
	f.calls++
	if f.calls <= f.failFirst {
		return fmt.Errorf("flaky: %w", rdma.ErrTimeout)
	}
	return nil
}

func (f *flakyEndpoint) Read(p rdma.RemotePtr, dst []uint64) error           { return f.verb() }
func (f *flakyEndpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error { return f.verb() }
func (f *flakyEndpoint) Write(p rdma.RemotePtr, src []uint64) error          { return f.verb() }
func (f *flakyEndpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	return old, f.verb()
}
func (f *flakyEndpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	return 0, f.verb()
}
func (f *flakyEndpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	return rdma.MakePtr(server, 64), f.verb()
}
func (f *flakyEndpoint) Free(p rdma.RemotePtr, n int) error          { return f.verb() }
func (f *flakyEndpoint) Call(server int, req []byte) ([]byte, error) { return nil, f.verb() }
func (f *flakyEndpoint) NumServers() int                             { return 4 }
