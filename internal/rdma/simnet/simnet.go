// Package simnet implements the rdma verbs API on a discrete-event-simulated
// InfiniBand-style fabric, reproducing the performance behaviour of the
// paper's testbed (Section 6: dual-port FDR 4x, two memory servers per
// physical machine with the NIC attached to one socket, SRQ-based RPC
// handlers).
//
// Index data lives in real memory (rdma.Region) and all protocol code
// executes for real; only *time* is simulated. The cost model:
//
//   - One-sided verbs occupy the client machine's NIC, cross the wire, and
//     occupy the target server's NIC for a per-op processing cost plus
//     payload/bandwidth — the remote CPU is never involved.
//   - Two-sided RPCs additionally pass through the server's shared receive
//     queue and occupy a handler core (the machine's cores are shared by its
//     memory servers); servers whose NIC path crosses the inter-socket (QPI)
//     link pay a multiplier on CPU work; RPC response payloads are also
//     throttled by a per-machine CPU-egress station (the CPU-mediated copy
//     path that limits two-sided bulk transfers, Section 6.1).
//   - Co-located deployments (Appendix A.3) turn accesses to the machine's
//     own memory server into local memory operations.
//
// Everything is deterministic: equal configurations and workload seeds yield
// identical virtual-time results.
package simnet

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/sim"
	"github.com/namdb/rdmatree/internal/stats"
)

// Config is the fabric's calibrated cost model. NewConfig supplies defaults
// matching the paper's testbed shape; see EXPERIMENTS.md for the
// calibration rationale.
type Config struct {
	Topology nam.Topology

	// RegionBytes is each memory server's registered region size.
	RegionBytes int

	// LinkLatencyNS is the one-way wire+switch latency.
	LinkLatencyNS int64
	// OneSidedClientNS is the client-NIC processing cost per one-sided verb.
	OneSidedClientNS int64
	// OneSidedServerNS is the server-NIC processing cost per one-sided verb
	// (the verbs-rate limit of the target NIC).
	OneSidedServerNS int64
	// SmallClientNS / SmallServerNS are the NIC costs of small (<= 16 byte
	// payload) one-sided verbs: atomics and single-word reads, which real
	// NICs process inline.
	SmallClientNS int64
	SmallServerNS int64
	// RPCNICNS is the NIC processing cost per two-sided message.
	RPCNICNS int64
	// ServerBW / ClientBW are NIC bandwidths in bytes/second.
	ServerBW float64
	ClientBW float64
	// LocalNS and LocalBW model co-located local memory accesses.
	LocalNS int64
	LocalBW float64
	// CPUCopyBW is the per-machine CPU-egress bandwidth for RPC response
	// payloads (the two-sided bulk-transfer limit).
	CPUCopyBW float64
	// HandlerCoresPerMachine is the CPU core pool shared by the memory
	// servers of one machine.
	HandlerCoresPerMachine int
	// HandlersPerServer is the number of SRQ worker processes per server.
	HandlersPerServer int
	// RPCBaseNS is the handler CPU cost per RPC before page visits.
	RPCBaseNS int64
	// VisitNS is the handler CPU cost per index page visited; wire it into
	// the design options (coarse.Options.VisitNS etc.).
	VisitNS int64
	// QPIFactor multiplies CPU work of servers that cross the inter-socket
	// link to reach the NIC.
	QPIFactor float64
	// ClientSpinNS / ServerSpinNS are the spin-wait backoff of Env.Pause.
	ClientSpinNS int64
	ServerSpinNS int64
	// ClientNICPipeline is the number of verbs a compute machine's NIC
	// processes concurrently (doorbell/completion handling is deeply
	// pipelined); wire bandwidth still serializes transfers.
	ClientNICPipeline int
}

// NewConfig returns the calibrated default model for a topology.
func NewConfig(top nam.Topology) Config {
	return Config{
		Topology:               top,
		RegionBytes:            256 << 20,
		LinkLatencyNS:          900,
		OneSidedClientNS:       250,
		OneSidedServerNS:       500,
		SmallClientNS:          100,
		SmallServerNS:          150,
		RPCNICNS:               400,
		ServerBW:               7e9,
		ClientBW:               7e9,
		LocalNS:                300,
		LocalBW:                25e9,
		CPUCopyBW:              5e9,
		HandlerCoresPerMachine: 20,
		HandlersPerServer:      20,
		RPCBaseNS:              10000,
		VisitNS:                2000,
		QPIFactor:              1.4,
		ClientSpinNS:           1000,
		ServerSpinNS:           500,
		ClientNICPipeline:      16,
	}
}

const (
	verbHeaderBytes = 32
	ackBytes        = 16
	rpcHeaderBytes  = 24
)

// Fabric is a simulated NAM cluster.
type Fabric struct {
	S   *sim.Sim
	Cfg Config

	servers   []*rdma.Server
	serverNIC []*sim.Resource // per memory server (one NIC port each)
	egress    []*sim.Resource // per memory machine: CPU-mediated RPC payload path
	clientOps []*sim.Resource // per compute machine: pipelined verb processing
	clientBW  []*sim.Resource // per compute machine: wire bandwidth
	cores     []*sim.Resource // per memory machine: handler core pool
	srqs      []*sim.Queue    // per memory server

	handler rdma.Handler
	started bool

	// BytesIn/BytesOut count network bytes through each server NIC
	// (Figure 9's utilization metric). Local (co-located) accesses are not
	// counted.
	BytesIn  *stats.PerServer
	BytesOut *stats.PerServer
}

var _ rdma.Fabric = (*Fabric)(nil)

// New builds a fabric on a simulation instance.
func New(s *sim.Sim, cfg Config) *Fabric {
	if err := cfg.Topology.Validate(); err != nil {
		panic(err)
	}
	top := cfg.Topology
	f := &Fabric{S: s, Cfg: cfg}
	for i := 0; i < top.MemServers; i++ {
		f.servers = append(f.servers, rdma.NewServer(i, cfg.RegionBytes, nam.SuperblockBytes))
		f.serverNIC = append(f.serverNIC, sim.NewResource(s, 1))
		f.srqs = append(f.srqs, sim.NewQueue(s))
	}
	for m := 0; m < top.MemMachines(); m++ {
		f.cores = append(f.cores, sim.NewResource(s, cfg.HandlerCoresPerMachine))
		f.egress = append(f.egress, sim.NewResource(s, 1))
	}
	for m := 0; m < top.ComputeMachines; m++ {
		f.clientOps = append(f.clientOps, sim.NewResource(s, cfg.ClientNICPipeline))
		f.clientBW = append(f.clientBW, sim.NewResource(s, 1))
	}
	f.BytesIn = stats.NewPerServer(top.MemServers)
	f.BytesOut = stats.NewPerServer(top.MemServers)
	return f
}

// NumServers implements rdma.Fabric.
func (f *Fabric) NumServers() int { return len(f.servers) }

// Server implements rdma.Fabric.
func (f *Fabric) Server(i int) *rdma.Server { return f.servers[i] }

// SetHandler implements rdma.Fabric.
func (f *Fabric) SetHandler(h rdma.Handler) { f.handler = h }

// qpi returns the CPU multiplier for a server.
func (f *Fabric) qpi(server int) float64 {
	if f.Cfg.Topology.ServerCrossesQPI(server) {
		return f.Cfg.QPIFactor
	}
	return 1
}

// Start spawns the SRQ handler processes. Call after SetHandler and before
// issuing RPCs.
func (f *Fabric) Start() {
	if f.started {
		panic("simnet: Start called twice")
	}
	f.started = true
	for srv := range f.servers {
		srv := srv
		machine := f.Cfg.Topology.MachineOfServer(srv)
		for w := 0; w < f.Cfg.HandlersPerServer; w++ {
			f.S.Spawn(fmt.Sprintf("srv%d/handler%d", srv, w), func(p *sim.Proc) {
				f.handlerLoop(p, srv, machine)
			})
		}
	}
}

type rpcJob struct {
	req  []byte
	resp []byte
	done *sim.Event
}

func (f *Fabric) handlerLoop(p *sim.Proc, srv, machine int) {
	env := handlerEnv{p: p, factor: f.qpi(srv), spin: f.Cfg.ServerSpinNS}
	for {
		job := f.srqs[srv].Get(p).(*rpcJob)
		f.cores[machine].Acquire(p)
		env.Charge(f.Cfg.RPCBaseNS)
		resp, _ := f.handler(env, srv, job.req)
		f.cores[machine].Release()
		job.resp = resp
		job.done.Fire()
	}
}

// handlerEnv charges handler CPU work in virtual time, scaled by the QPI
// factor; spin waits hold the core (busy waiting, Section 6.3).
type handlerEnv struct {
	p      *sim.Proc
	factor float64
	spin   int64
}

// Charge implements rdma.Env.
func (e handlerEnv) Charge(ns int64) {
	if ns > 0 {
		e.p.Sleep(int64(float64(ns) * e.factor))
	}
}

// Pause implements rdma.Env.
func (e handlerEnv) Pause() { e.p.Sleep(e.spin) }

// Now exposes the handler's virtual clock (telemetry.Clock) so server-side
// spans and latencies are measured in simulated time.
func (e handlerEnv) Now() int64 { return e.p.Now() }

// ClientEnv returns the execution environment for a client process.
func (f *Fabric) ClientEnv(p *sim.Proc) rdma.Env {
	return clientEnv{p: p, spin: f.Cfg.ClientSpinNS}
}

type clientEnv struct {
	p    *sim.Proc
	spin int64
}

// Charge implements rdma.Env.
func (e clientEnv) Charge(ns int64) {
	if ns > 0 {
		e.p.Sleep(ns)
	}
}

// Pause implements rdma.Env.
func (e clientEnv) Pause() { e.p.Sleep(e.spin) }

// Now exposes the client's virtual clock (telemetry.Clock).
func (e clientEnv) Now() int64 { return e.p.Now() }

// clientNICUse charges a client-NIC visit: the per-verb processing cost on
// the pipelined op station and the payload on the bandwidth station.
func (f *Fabric) clientNICUse(p *sim.Proc, machine int, opNS int64, bytes int) {
	if opNS > 0 {
		f.clientOps[machine].Use(p, opNS)
	}
	if bytes > 0 {
		f.clientBW[machine].Use(p, bwNS(bytes, f.Cfg.ClientBW))
	}
}

func bwNS(bytes int, bw float64) int64 {
	if bytes <= 0 {
		return 0
	}
	return int64(float64(bytes) / bw * 1e9)
}

// Endpoint returns the timed endpoint of one client thread; it must only be
// used from within the given process.
func (f *Fabric) Endpoint(clientID int, p *sim.Proc) rdma.Endpoint {
	return &endpoint{f: f, client: clientID, machine: f.Cfg.Topology.MachineOfClient(clientID), p: p}
}

type endpoint struct {
	f       *Fabric
	client  int
	machine int
	p       *sim.Proc

	// Async post/poll state (see Poll).
	q         rdma.PostQueue
	unflushed int
	jobs      []*rpcJob // per posted Call, in posting order; nil = rejected
	srvReq    []int     // per-server request bytes of the current batch
	srvResp   []int     // per-server response bytes
	srvCount  []int     // per-server one-sided verb count
}

var _ rdma.Endpoint = (*endpoint)(nil)
var _ rdma.AsyncEndpoint = (*endpoint)(nil)

func (e *endpoint) NumServers() int { return len(e.f.servers) }

// isLocal reports whether server is co-located with this client's machine.
func (e *endpoint) isLocal(server int) bool {
	top := e.f.Cfg.Topology
	return top.CoLocated && top.MachineOfServer(server) == e.machine
}

// oneSided models the timing of a single one-sided verb carrying reqBytes to
// the server and respBytes back. small selects the inline-op NIC costs
// (atomics, single-word reads).
func (e *endpoint) oneSided(server, reqBytes, respBytes int, small bool) {
	cfg := &e.f.Cfg
	if e.isLocal(server) {
		e.p.Sleep(cfg.LocalNS + bwNS(reqBytes+respBytes, cfg.LocalBW))
		return
	}
	clientOp, serverOp := cfg.OneSidedClientNS, cfg.OneSidedServerNS
	if small {
		clientOp, serverOp = cfg.SmallClientNS, cfg.SmallServerNS
	}
	e.f.clientNICUse(e.p, e.machine, clientOp, reqBytes)
	e.p.Sleep(cfg.LinkLatencyNS)
	e.f.serverNIC[server].Use(e.p, serverOp+bwNS(reqBytes+respBytes, cfg.ServerBW))
	e.f.BytesIn.Add(server, int64(reqBytes))
	e.f.BytesOut.Add(server, int64(respBytes))
	e.p.Sleep(cfg.LinkLatencyNS)
	e.f.clientNICUse(e.p, e.machine, 0, respBytes)
}

func (e *endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	if p.IsNull() {
		return fmt.Errorf("simnet: null pointer")
	}
	e.oneSided(p.Server(), verbHeaderBytes, len(dst)*8+ackBytes, len(dst) <= 2)
	e.f.servers[p.Server()].Region.Read(p.Offset(), dst)
	return nil
}

func (e *endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	if len(ps) == 0 {
		return nil
	}
	cfg := &e.f.Cfg
	// Selectively signalled batch: post all READs at once, wait for the
	// last completion. The client NIC processes one doorbell plus the
	// aggregate inbound payload; each target server NIC serializes its own
	// share; only one round trip of latency is exposed. Servers are visited
	// in ID order to keep the simulation deterministic.
	perServer := make([]int, len(e.f.servers)) // server -> payload bytes
	perCount := make([]int, len(e.f.servers))
	total := 0
	for i, p := range ps {
		if p.IsNull() {
			return fmt.Errorf("simnet: null pointer in batch")
		}
		b := len(dst[i]) * 8
		perServer[p.Server()] += b + ackBytes
		perCount[p.Server()]++
		total += b
	}
	allLocal := true
	for srv, n := range perCount {
		if n > 0 && !e.isLocal(srv) {
			allLocal = false
		}
	}
	if allLocal {
		e.p.Sleep(cfg.LocalNS*int64(len(ps)) + bwNS(total, cfg.LocalBW))
	} else {
		e.f.clientNICUse(e.p, e.machine, cfg.OneSidedClientNS, verbHeaderBytes*len(ps))
		e.p.Sleep(cfg.LinkLatencyNS)
		// The posted READs hit all target servers in parallel; the client
		// observes the slowest one (fork-join). Doorbell batching: each
		// server NIC charges one amortized (small) op for the whole batch
		// plus its payload stream.
		pending := 0
		join := sim.NewEvent(e.f.S)
		for srv := range perServer {
			if perCount[srv] == 0 || e.isLocal(srv) {
				continue
			}
			pending++
			srv := srv
			e.f.S.Spawn("batchread", func(q *sim.Proc) {
				e.f.serverNIC[srv].Use(q, cfg.SmallServerNS+bwNS(perServer[srv], cfg.ServerBW))
				e.f.BytesIn.Add(srv, int64(verbHeaderBytes*perCount[srv]))
				e.f.BytesOut.Add(srv, int64(perServer[srv]))
				pending--
				if pending == 0 {
					join.Fire()
				}
			})
		}
		if pending > 0 {
			join.Wait(e.p)
		}
		e.p.Sleep(cfg.LinkLatencyNS)
		e.f.clientNICUse(e.p, e.machine, 0, total)
	}
	for i, p := range ps {
		e.f.servers[p.Server()].Region.Read(p.Offset(), dst[i])
	}
	return nil
}

func (e *endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	if p.IsNull() {
		return fmt.Errorf("simnet: null pointer")
	}
	e.oneSided(p.Server(), verbHeaderBytes+len(src)*8, ackBytes, len(src) <= 2)
	e.f.servers[p.Server()].Region.Write(p.Offset(), src)
	return nil
}

func (e *endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	if p.IsNull() {
		return 0, fmt.Errorf("simnet: null pointer")
	}
	e.oneSided(p.Server(), verbHeaderBytes+16, ackBytes+8, true)
	return e.f.servers[p.Server()].Region.CompareAndSwap(p.Offset(), old, new), nil
}

func (e *endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	if p.IsNull() {
		return 0, fmt.Errorf("simnet: null pointer")
	}
	e.oneSided(p.Server(), verbHeaderBytes+8, ackBytes+8, true)
	return e.f.servers[p.Server()].Region.FetchAdd(p.Offset(), delta), nil
}

func (e *endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	// Allocation is a fetch-and-add on the server's bump pointer.
	e.oneSided(server, verbHeaderBytes+8, ackBytes+8, true)
	off, err := e.f.servers[server].Alloc.Alloc(n)
	if err != nil {
		return rdma.NullPtr, err
	}
	return rdma.MakePtr(server, off), nil
}

func (e *endpoint) Free(p rdma.RemotePtr, n int) error {
	e.oneSided(p.Server(), verbHeaderBytes+8, ackBytes, true)
	e.f.servers[p.Server()].Alloc.Free(p.Offset(), n)
	return nil
}

func (e *endpoint) Call(server int, req []byte) ([]byte, error) {
	if e.f.handler == nil {
		return nil, fmt.Errorf("simnet: no RPC handler installed")
	}
	if !e.f.started {
		return nil, fmt.Errorf("simnet: Start not called")
	}
	cfg := &e.f.Cfg
	local := e.isLocal(server)
	reqBytes := len(req) + rpcHeaderBytes
	if local {
		e.p.Sleep(cfg.LocalNS)
	} else {
		e.f.clientNICUse(e.p, e.machine, cfg.RPCNICNS, reqBytes)
		e.p.Sleep(cfg.LinkLatencyNS)
		e.f.serverNIC[server].Use(e.p, cfg.RPCNICNS+bwNS(reqBytes, cfg.ServerBW))
		e.f.BytesIn.Add(server, int64(reqBytes))
	}
	job := &rpcJob{req: req, done: sim.NewEvent(e.f.S)}
	e.f.srqs[server].Put(job)
	job.done.Wait(e.p)
	respBytes := len(job.resp) + rpcHeaderBytes
	machine := cfg.Topology.MachineOfServer(server)
	if local {
		e.p.Sleep(cfg.LocalNS + bwNS(respBytes, cfg.LocalBW))
		return job.resp, nil
	}
	// Response path: CPU-mediated egress, server NIC, wire, client NIC.
	e.f.egress[machine].Use(e.p, bwNS(respBytes, cfg.CPUCopyBW))
	e.f.serverNIC[server].Use(e.p, cfg.RPCNICNS+bwNS(respBytes, cfg.ServerBW))
	e.f.BytesOut.Add(server, int64(respBytes))
	e.p.Sleep(cfg.LinkLatencyNS)
	e.f.clientNICUse(e.p, e.machine, 0, respBytes)
	return job.resp, nil
}

// --- non-blocking post/poll surface (rdma.AsyncEndpoint) -----------------

// PostRead implements rdma.AsyncEndpoint.
func (e *endpoint) PostRead(p rdma.RemotePtr, dst []uint64) rdma.Token {
	e.unflushed++
	return e.q.Post(rdma.Posted{Op: rdma.PostOpRead, P: p, Dst: dst})
}

// PostWrite implements rdma.AsyncEndpoint.
func (e *endpoint) PostWrite(p rdma.RemotePtr, src []uint64) rdma.Token {
	e.unflushed++
	return e.q.Post(rdma.Posted{Op: rdma.PostOpWrite, P: p, Src: src})
}

// PostCAS implements rdma.AsyncEndpoint.
func (e *endpoint) PostCAS(p rdma.RemotePtr, old, new uint64) rdma.Token {
	e.unflushed++
	return e.q.Post(rdma.Posted{Op: rdma.PostOpCAS, P: p, A: old, B: new})
}

// PostFetchAdd implements rdma.AsyncEndpoint.
func (e *endpoint) PostFetchAdd(p rdma.RemotePtr, delta uint64) rdma.Token {
	e.unflushed++
	return e.q.Post(rdma.Posted{Op: rdma.PostOpFetchAdd, P: p, A: delta})
}

// PostCall implements rdma.AsyncEndpoint.
func (e *endpoint) PostCall(server int, req []byte) rdma.Token {
	e.unflushed++
	return e.q.Post(rdma.Posted{Op: rdma.PostOpCall, Server: server, Req: req})
}

// Flush implements rdma.AsyncEndpoint: one doorbell write covers every verb
// posted since the last flush, so the client NIC's per-verb processing cost
// is paid once per batch — the cross-op generalization of ReadMulti's in-op
// amortization.
func (e *endpoint) Flush() {
	if e.unflushed == 0 {
		return
	}
	e.unflushed = 0
	e.f.clientOps[e.machine].Use(e.p, e.f.Cfg.OneSidedClientNS)
}

// postedBytes returns the request/response wire bytes of a buffered
// one-sided verb, mirroring the blocking verbs' accounting.
func postedBytes(v *rdma.Posted) (req, resp int) {
	switch v.Op {
	case rdma.PostOpRead:
		return verbHeaderBytes, len(v.Dst)*8 + ackBytes
	case rdma.PostOpWrite:
		return verbHeaderBytes + len(v.Src)*8, ackBytes
	case rdma.PostOpCAS:
		return verbHeaderBytes + 16, ackBytes + 8
	case rdma.PostOpFetchAdd:
		return verbHeaderBytes + 8, ackBytes + 8
	}
	return 0, 0
}

// callError classifies a rejected PostCall at completion-assembly time.
func (e *endpoint) callError(server int) error {
	if e.f.handler == nil {
		return fmt.Errorf("simnet: no RPC handler installed")
	}
	if !e.f.started {
		return fmt.Errorf("simnet: Start not called")
	}
	return fmt.Errorf("simnet: call to unknown server %d", server)
}

// Poll implements rdma.AsyncEndpoint. The whole outstanding batch is one
// generalized selectively-signalled doorbell batch: every posted verb leaves
// the client in the same scheduling quantum, each target server's NIC
// serializes its own share (one amortized op cost plus the payload stream,
// exactly ReadMulti's model), the posted RPCs ride their own fork paths, and
// the client observes the slowest leg — one exposed round trip for the whole
// batch. Memory effects execute in posting order after the join, so
// same-page verb pairs (page READ + version READ) keep the RC in-order
// guarantee the fused read protocol relies on, across operations.
func (e *endpoint) Poll(out []rdma.Completion) []rdma.Completion {
	vs := e.q.Pending()
	if len(vs) == 0 {
		return out
	}
	e.Flush() // unflushed verbs still ring a (late) doorbell
	cfg := &e.f.Cfg
	if e.srvReq == nil {
		n := len(e.f.servers)
		e.srvReq, e.srvResp, e.srvCount = make([]int, n), make([]int, n), make([]int, n)
	}
	for i := range e.srvReq {
		e.srvReq[i], e.srvResp[i], e.srvCount[i] = 0, 0, 0
	}
	var (
		reqRemote, respRemote int // client-NIC wire bytes, one-sided verbs
		localNS               int64
		localBytes            int
		pending               int
	)
	join := sim.NewEvent(e.f.S)
	for i := range vs {
		v := &vs[i]
		if v.Op == rdma.PostOpCall {
			if e.f.handler == nil || !e.f.started || v.Server < 0 || v.Server >= len(e.f.servers) {
				e.jobs = append(e.jobs, nil)
				continue
			}
			job := &rpcJob{req: v.Req, done: sim.NewEvent(e.f.S)}
			e.jobs = append(e.jobs, job)
			pending++
			server := v.Server
			e.f.S.Spawn("asynccall", func(q *sim.Proc) {
				local := e.isLocal(server)
				reqBytes := len(job.req) + rpcHeaderBytes
				if local {
					q.Sleep(cfg.LocalNS)
				} else {
					e.f.clientNICUse(q, e.machine, cfg.RPCNICNS, reqBytes)
					q.Sleep(cfg.LinkLatencyNS)
					e.f.serverNIC[server].Use(q, cfg.RPCNICNS+bwNS(reqBytes, cfg.ServerBW))
					e.f.BytesIn.Add(server, int64(reqBytes))
				}
				e.f.srqs[server].Put(job)
				job.done.Wait(q)
				respBytes := len(job.resp) + rpcHeaderBytes
				machine := cfg.Topology.MachineOfServer(server)
				if local {
					q.Sleep(cfg.LocalNS + bwNS(respBytes, cfg.LocalBW))
				} else {
					e.f.egress[machine].Use(q, bwNS(respBytes, cfg.CPUCopyBW))
					e.f.serverNIC[server].Use(q, cfg.RPCNICNS+bwNS(respBytes, cfg.ServerBW))
					e.f.BytesOut.Add(server, int64(respBytes))
					q.Sleep(cfg.LinkLatencyNS)
					e.f.clientNICUse(q, e.machine, 0, respBytes)
				}
				pending--
				if pending == 0 {
					join.Fire()
				}
			})
			continue
		}
		if v.P.IsNull() {
			continue // completes with an error below, no wire traffic
		}
		req, resp := postedBytes(v)
		srv := v.P.Server()
		if e.isLocal(srv) {
			localNS += cfg.LocalNS
			localBytes += req + resp
			continue
		}
		e.srvReq[srv] += req
		e.srvResp[srv] += resp
		e.srvCount[srv]++
		reqRemote += req
		respRemote += resp
	}
	remote := false
	for srv := range e.srvCount {
		if e.srvCount[srv] == 0 {
			continue
		}
		remote = true
		pending++
		srv := srv
		e.f.S.Spawn("asyncbatch", func(q *sim.Proc) {
			e.f.serverNIC[srv].Use(q, cfg.SmallServerNS+bwNS(e.srvReq[srv]+e.srvResp[srv], cfg.ServerBW))
			e.f.BytesIn.Add(srv, int64(e.srvReq[srv]))
			e.f.BytesOut.Add(srv, int64(e.srvResp[srv]))
			pending--
			if pending == 0 {
				join.Fire()
			}
		})
	}
	if localNS > 0 {
		e.p.Sleep(localNS + bwNS(localBytes, cfg.LocalBW))
	}
	if remote {
		e.f.clientNICUse(e.p, e.machine, 0, reqRemote)
		e.p.Sleep(cfg.LinkLatencyNS)
	}
	if pending > 0 {
		join.Wait(e.p)
	}
	if remote {
		e.p.Sleep(cfg.LinkLatencyNS)
		e.f.clientNICUse(e.p, e.machine, 0, respRemote)
	}
	// Memory effects and completion assembly, in posting order.
	callIdx := 0
	for i := range vs {
		v := &vs[i]
		c := rdma.Completion{Token: v.Tok}
		switch v.Op {
		case rdma.PostOpCall:
			job := e.jobs[callIdx]
			callIdx++
			if job == nil {
				c.Err = e.callError(v.Server)
			} else {
				c.Resp = job.resp
			}
		default:
			if v.P.IsNull() {
				c.Err = fmt.Errorf("simnet: null pointer")
				break
			}
			r := e.f.servers[v.P.Server()].Region
			switch v.Op {
			case rdma.PostOpRead:
				r.Read(v.P.Offset(), v.Dst)
			case rdma.PostOpWrite:
				r.Write(v.P.Offset(), v.Src)
			case rdma.PostOpCAS:
				//rdmavet:allow caschecked -- transport executes the posted CAS; the prior value is delivered in Completion.Val for the poster to compare
				c.Val = r.CompareAndSwap(v.P.Offset(), v.A, v.B)
			case rdma.PostOpFetchAdd:
				c.Val = r.FetchAdd(v.P.Offset(), v.A)
			}
		}
		out = append(out, c)
	}
	e.q.Clear()
	e.jobs = e.jobs[:0]
	return out
}

// SetupEndpoint returns an untimed endpoint for bulk loading: operations
// execute immediately without consuming virtual time or fabric resources.
func (f *Fabric) SetupEndpoint() rdma.Endpoint { return &setupEndpoint{f: f} }

type setupEndpoint struct {
	f *Fabric
}

var _ rdma.Endpoint = (*setupEndpoint)(nil)

func (e *setupEndpoint) NumServers() int { return len(e.f.servers) }

func (e *setupEndpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	e.f.servers[p.Server()].Region.Read(p.Offset(), dst)
	return nil
}

func (e *setupEndpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	for i, p := range ps {
		e.f.servers[p.Server()].Region.Read(p.Offset(), dst[i])
	}
	return nil
}

func (e *setupEndpoint) Write(p rdma.RemotePtr, src []uint64) error {
	e.f.servers[p.Server()].Region.Write(p.Offset(), src)
	return nil
}

func (e *setupEndpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	return e.f.servers[p.Server()].Region.CompareAndSwap(p.Offset(), old, new), nil
}

func (e *setupEndpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	return e.f.servers[p.Server()].Region.FetchAdd(p.Offset(), delta), nil
}

func (e *setupEndpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	off, err := e.f.servers[server].Alloc.Alloc(n)
	if err != nil {
		return rdma.NullPtr, err
	}
	return rdma.MakePtr(server, off), nil
}

func (e *setupEndpoint) Free(p rdma.RemotePtr, n int) error {
	e.f.servers[p.Server()].Alloc.Free(p.Offset(), n)
	return nil
}

func (e *setupEndpoint) Call(int, []byte) ([]byte, error) {
	return nil, fmt.Errorf("simnet: RPC on setup endpoint")
}

// Utilization reports per-resource busy fractions over a measurement window
// — which station saturates explains every throughput plateau in the
// experiments.
type Utilization struct {
	ServerNIC []float64 // per memory server
	Egress    []float64 // per memory machine (RPC payload path)
	Cores     []float64 // per memory machine (handler core pool)
	ClientOps []float64 // per compute machine (verb processing)
	ClientBW  []float64 // per compute machine (wire bandwidth)
}

// Max returns the largest utilization across all stations.
func (u Utilization) Max() (name string, util float64) {
	scan := func(n string, vs []float64) {
		for _, v := range vs {
			if v > util {
				name, util = n, v
			}
		}
	}
	scan("server-nic", u.ServerNIC)
	scan("cpu-egress", u.Egress)
	scan("handler-cores", u.Cores)
	scan("client-nic-ops", u.ClientOps)
	scan("client-bw", u.ClientBW)
	return name, util
}

// BusySnapshot captures the busy counters of every station; pass it to
// UtilizationSince at the end of the window.
func (f *Fabric) BusySnapshot() []sim.Time {
	var out []sim.Time
	for _, r := range f.serverNIC {
		out = append(out, r.BusyTime())
	}
	for _, r := range f.egress {
		out = append(out, r.BusyTime())
	}
	for _, r := range f.cores {
		out = append(out, r.BusyTime())
	}
	for _, r := range f.clientOps {
		out = append(out, r.BusyTime())
	}
	for _, r := range f.clientBW {
		out = append(out, r.BusyTime())
	}
	return out
}

// UtilizationSince computes utilization over [since, now] from a snapshot
// taken at the window start.
func (f *Fabric) UtilizationSince(snap []sim.Time, since sim.Time) Utilization {
	var u Utilization
	i := 0
	take := func(rs []*sim.Resource) []float64 {
		out := make([]float64, len(rs))
		for j, r := range rs {
			out[j] = r.Utilization(snap[i], since)
			i++
		}
		return out
	}
	u.ServerNIC = take(f.serverNIC)
	u.Egress = take(f.egress)
	u.Cores = take(f.cores)
	u.ClientOps = take(f.clientOps)
	u.ClientBW = take(f.clientBW)
	return u
}

// loadSampleNS is the minimum window ServerCoreLoad averages over before it
// re-samples: an instantaneous busy fraction of a 20-core pool is 0/20ths or
// k/20ths of whatever happens to run this nanosecond, while a ~50µs window
// (thousands of handler visits under load) is a stable signal.
const loadSampleNS = 50_000

// ServerCoreLoad returns a load probe for the handler-core pool backing
// memory server srv: each call reports the pool's utilization in [0,1],
// averaged over a sliding window of at least loadSampleNS of virtual time.
// The designs' servers piggyback it on RPC replies (nam.Response.Load) so
// adaptive clients see the server-CPU signal without extra round trips. The
// returned closure is driven only by virtual time, so runs stay
// deterministic; it is owned by the server's handler processes, which the
// simulator serializes like any other shared handler state.
func (f *Fabric) ServerCoreLoad(srv int) func() float64 {
	r := f.cores[f.Cfg.Topology.MachineOfServer(srv)]
	var (
		lastBusy sim.Time = r.BusyTime()
		lastNow  sim.Time = f.S.Now()
		util     float64
	)
	return func() float64 {
		if now := f.S.Now(); now-lastNow >= loadSampleNS {
			util = r.Utilization(lastBusy, lastNow)
			if util > 1 {
				util = 1 // transient over-accounting at window edges
			}
			lastBusy, lastNow = r.BusyTime(), now
		}
		return util
	}
}
