package simnet

import (
	"testing"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/sim"
)

func testTopology() nam.Topology {
	return nam.Topology{
		MemServers:           4,
		MemServersPerMachine: 2,
		ComputeMachines:      2,
		ClientsPerMachine:    4,
	}
}

func TestOneSidedReadTiming(t *testing.T) {
	s := sim.New()
	cfg := NewConfig(testTopology())
	f := New(s, cfg)
	// Expected: clientNIC(op + 32B/bw) + lat + serverNIC(op + (1024+32+16)/bw) + lat + clientNIC(1040/bw).
	var elapsed sim.Time
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		dst := make([]uint64, 128)
		start := p.Now()
		if err := ep.Read(rdma.MakePtr(0, 64), dst); err != nil {
			t.Error(err)
		}
		elapsed = p.Now() - start
	})
	s.Run()
	want := cfg.OneSidedClientNS + bwNS(32, cfg.ClientBW) +
		cfg.LinkLatencyNS +
		cfg.OneSidedServerNS + bwNS(32+1024+16, cfg.ServerBW) +
		cfg.LinkLatencyNS +
		bwNS(1024+16, cfg.ClientBW)
	if elapsed != want {
		t.Fatalf("read latency = %d; want %d", elapsed, want)
	}
}

func TestOneSidedDataFidelity(t *testing.T) {
	s := sim.New()
	f := New(s, NewConfig(testTopology()))
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		ptr := rdma.MakePtr(2, 128)
		if err := ep.Write(ptr, []uint64{7, 8, 9}); err != nil {
			t.Error(err)
			return
		}
		dst := make([]uint64, 3)
		if err := ep.Read(ptr, dst); err != nil {
			t.Error(err)
			return
		}
		if dst[0] != 7 || dst[2] != 9 {
			t.Errorf("read back %v", dst)
		}
		if old, err := ep.CompareAndSwap(ptr, 7, 70); err != nil || old != 7 {
			t.Errorf("CAS old=%d err=%v", old, err)
		}
		if old, err := ep.FetchAdd(ptr, 5); err != nil || old != 70 {
			t.Errorf("FAA old=%d err=%v", old, err)
		}
	})
	s.Run()
}

func TestNICSerializationQueues(t *testing.T) {
	// Two clients on the SAME compute machine issuing simultaneously must
	// serialize on the shared client NIC.
	s := sim.New()
	cfg := NewConfig(testTopology())
	f := New(s, cfg)
	done := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("c", func(p *sim.Proc) {
			ep := f.Endpoint(i*2, p) // clients 0 and 2 are both on machine 0
			dst := make([]uint64, 128)
			if err := ep.Read(rdma.MakePtr(i, 0), dst); err != nil {
				t.Error(err)
			}
			done[i] = p.Now()
		})
	}
	s.Run()
	if done[0] == done[1] {
		t.Fatalf("reads did not serialize on shared client NIC: %v", done)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	s := sim.New()
	cfg := NewConfig(testTopology())
	f := New(s, cfg)
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		env.Charge(1000)
		return append([]byte{byte(server)}, req...), rdma.Work{PagesTouched: 1}
	})
	f.Start()
	var elapsed sim.Time
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		start := p.Now()
		resp, err := ep.Call(1, []byte("ping"))
		if err != nil {
			t.Error(err)
			return
		}
		if resp[0] != 1 || string(resp[1:]) != "ping" {
			t.Errorf("resp %q", resp)
		}
		elapsed = p.Now() - start
	})
	s.RunUntil(1_000_000)
	s.Shutdown()
	// Must include base CPU (6000 * 1.4 QPI for server 1) + charged work.
	min := cfg.RPCBaseNS + 1000 + 2*cfg.LinkLatencyNS
	if elapsed < min {
		t.Fatalf("RPC latency %d below floor %d", elapsed, min)
	}
}

func TestRPCQPIFactorSlowsSecondServer(t *testing.T) {
	s := sim.New()
	cfg := NewConfig(testTopology())
	f := New(s, cfg)
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		env.Charge(10000)
		return []byte{1}, rdma.Work{}
	})
	f.Start()
	var lat [2]sim.Time
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		for srv := 0; srv < 2; srv++ {
			start := p.Now()
			if _, err := ep.Call(srv, []byte("x")); err != nil {
				t.Error(err)
				return
			}
			lat[srv] = p.Now() - start
		}
	})
	s.RunUntil(10_000_000)
	s.Shutdown()
	if lat[1] <= lat[0] {
		t.Fatalf("QPI server not slower: srv0=%d srv1=%d", lat[0], lat[1])
	}
}

func TestHandlerCoreSaturation(t *testing.T) {
	// More concurrent RPCs than cores: throughput must be bounded by the
	// core pool, and latency must inflate.
	s := sim.New()
	top := testTopology()
	top.ClientsPerMachine = 40
	cfg := NewConfig(top)
	cfg.HandlerCoresPerMachine = 4
	cfg.HandlersPerServer = 8
	f := New(s, cfg)
	const cpuNS = 10000
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		env.Charge(cpuNS)
		return []byte{1}, rdma.Work{}
	})
	f.Start()
	completed := 0
	for c := 0; c < 40; c++ {
		c := c
		s.Spawn("c", func(p *sim.Proc) {
			ep := f.Endpoint(c, p)
			for {
				if _, err := ep.Call(0, []byte("x")); err != nil {
					t.Error(err)
					return
				}
				completed++
			}
		})
	}
	const horizon = 10_000_000 // 10ms virtual
	s.RunUntil(horizon)
	s.Shutdown()
	// Server 0's machine has 4 cores at 10us+6us base => max ~4/16us = 250k/s
	// => 2500 ops in 10ms. Allow slack.
	if completed > 2800 {
		t.Fatalf("completed %d ops; core pool not limiting", completed)
	}
	if completed < 1500 {
		t.Fatalf("completed only %d ops; implausibly slow", completed)
	}
}

func TestByteAccounting(t *testing.T) {
	s := sim.New()
	cfg := NewConfig(testTopology())
	f := New(s, cfg)
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		dst := make([]uint64, 128)
		if err := ep.Read(rdma.MakePtr(3, 0), dst); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if f.BytesOut.Get(3) != 1024+16 {
		t.Fatalf("server 3 out bytes = %d; want %d", f.BytesOut.Get(3), 1024+16)
	}
	if f.BytesIn.Get(3) != 32 {
		t.Fatalf("server 3 in bytes = %d; want 32", f.BytesIn.Get(3))
	}
	if f.BytesOut.Get(0) != 0 {
		t.Fatal("wrong server accounted")
	}
}

func TestReadMultiMasksLatency(t *testing.T) {
	s := sim.New()
	cfg := NewConfig(testTopology())
	f := New(s, cfg)
	const n = 8
	var batched, serial sim.Time
	s.Spawn("batch", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		ptrs := make([]rdma.RemotePtr, n)
		bufs := make([][]uint64, n)
		for i := range ptrs {
			ptrs[i] = rdma.MakePtr(i%4, uint64(i)*1024)
			bufs[i] = make([]uint64, 128)
		}
		start := p.Now()
		if err := ep.ReadMulti(ptrs, bufs); err != nil {
			t.Error(err)
		}
		batched = p.Now() - start
	})
	s.Run()
	s2 := sim.New()
	f2 := New(s2, cfg)
	s2.Spawn("serial", func(p *sim.Proc) {
		ep := f2.Endpoint(0, p)
		start := p.Now()
		for i := 0; i < n; i++ {
			dst := make([]uint64, 128)
			if err := ep.Read(rdma.MakePtr(i%4, uint64(i)*1024), dst); err != nil {
				t.Error(err)
			}
		}
		serial = p.Now() - start
	})
	s2.Run()
	if batched >= serial {
		t.Fatalf("batched read (%d) not faster than serial (%d)", batched, serial)
	}
}

func TestCoLocationLocalAccessFaster(t *testing.T) {
	top := nam.Topology{
		MemServers: 2, MemServersPerMachine: 1,
		ComputeMachines: 2, ClientsPerMachine: 2,
		CoLocated: true,
	}
	s := sim.New()
	cfg := NewConfig(top)
	f := New(s, cfg)
	var localT, remoteT sim.Time
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p) // machine 0, local server 0
		dst := make([]uint64, 128)
		start := p.Now()
		if err := ep.Read(rdma.MakePtr(0, 0), dst); err != nil {
			t.Error(err)
		}
		localT = p.Now() - start
		start = p.Now()
		if err := ep.Read(rdma.MakePtr(1, 0), dst); err != nil {
			t.Error(err)
		}
		remoteT = p.Now() - start
	})
	s.Run()
	if localT*3 > remoteT {
		t.Fatalf("local access (%d) not much faster than remote (%d)", localT, remoteT)
	}
	// Local accesses do not appear in network byte counters.
	if f.BytesOut.Get(0) != 0 {
		t.Fatal("local access counted as network traffic")
	}
	if f.BytesOut.Get(1) == 0 {
		t.Fatal("remote access not counted")
	}
}

func TestSetupEndpointConsumesNoTime(t *testing.T) {
	s := sim.New()
	f := New(s, NewConfig(testTopology()))
	ep := f.SetupEndpoint()
	if err := ep.Write(rdma.MakePtr(0, 0), []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 3)
	if err := ep.Read(rdma.MakePtr(0, 0), dst); err != nil {
		t.Fatal(err)
	}
	if dst[1] != 2 {
		t.Fatalf("read back %v", dst)
	}
	if s.Now() != 0 {
		t.Fatalf("setup endpoint advanced virtual time to %d", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, int64) {
		s := sim.New()
		cfg := NewConfig(testTopology())
		f := New(s, cfg)
		f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
			env.Charge(2000)
			return req, rdma.Work{}
		})
		f.Start()
		for c := 0; c < 8; c++ {
			c := c
			s.Spawn("c", func(p *sim.Proc) {
				ep := f.Endpoint(c, p)
				for i := 0; i < 50; i++ {
					if c%2 == 0 {
						if _, err := ep.Call(c%4, []byte{byte(i)}); err != nil {
							t.Error(err)
							return
						}
					} else {
						dst := make([]uint64, 16)
						if err := ep.Read(rdma.MakePtr(c%4, uint64(i*128)), dst); err != nil {
							t.Error(err)
							return
						}
					}
				}
			})
		}
		s.RunUntil(50_000_000)
		now := s.Now()
		bytes := f.BytesOut.Total()
		s.Shutdown()
		return now, bytes
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", t1, b1, t2, b2)
	}
}

// TestAsyncBatchOneExposedRTT pins the pipelining payoff in the performance
// model: N posted reads to one server complete in roughly one exposed round
// trip — one doorbell, one amortized server op cost, payload streamed —
// rather than N serial round trips.
func TestAsyncBatchOneExposedRTT(t *testing.T) {
	const n = 8
	topo := testTopology()
	run := func(async bool) sim.Time {
		s := sim.New()
		cfg := NewConfig(topo)
		f := New(s, cfg)
		var elapsed sim.Time
		s.Spawn("c", func(p *sim.Proc) {
			ep := f.Endpoint(0, p)
			dsts := make([][]uint64, n)
			for i := range dsts {
				dsts[i] = make([]uint64, 64)
			}
			start := p.Now()
			if async {
				a, ok := interface{}(ep).(rdma.AsyncEndpoint)
				if !ok {
					t.Error("simnet endpoint must implement rdma.AsyncEndpoint")
					return
				}
				for i := range dsts {
					a.PostRead(rdma.MakePtr(0, uint64(1024+512*i)), dsts[i])
				}
				a.Flush()
				comps := a.Poll(nil)
				for _, c := range comps {
					if c.Err != nil {
						t.Error(c.Err)
					}
				}
			} else {
				for i := range dsts {
					if err := ep.Read(rdma.MakePtr(0, uint64(1024+512*i)), dsts[i]); err != nil {
						t.Error(err)
					}
				}
			}
			elapsed = p.Now() - start
		})
		s.Run()
		return elapsed
	}
	serial, pipelined := run(false), run(true)
	if pipelined*3 >= serial {
		t.Fatalf("pipelined batch of %d reads took %d ns vs %d serial — expected >3x overlap", n, pipelined, serial)
	}
}

// TestAsyncDataFidelityAndOrder verifies posted verbs mutate the simulated
// regions identically to their blocking counterparts, in posting order, with
// per-verb completions.
func TestAsyncDataFidelityAndOrder(t *testing.T) {
	s := sim.New()
	f := New(s, NewConfig(testTopology()))
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		return append([]byte{byte(server)}, req...), rdma.Work{}
	})
	f.Start()
	s.Spawn("c", func(p *sim.Proc) {
		ep := f.Endpoint(0, p)
		a := interface{}(ep).(rdma.AsyncEndpoint)
		ptr := rdma.MakePtr(2, 128)
		dst := make([]uint64, 2)
		a.PostWrite(ptr, []uint64{7, 8})
		a.PostCAS(ptr, 7, 70)   // must observe the earlier posted write
		a.PostFetchAdd(ptr, 5)  // must observe the CAS
		a.PostRead(ptr, dst)    // must observe both atomics
		a.PostCall(1, []byte{9})
		a.PostRead(rdma.NullPtr, nil)
		a.Flush()
		comps := a.Poll(nil)
		if len(comps) != 6 {
			t.Errorf("got %d completions", len(comps))
			return
		}
		for i, c := range comps {
			if c.Token != rdma.Token(i) {
				t.Errorf("completion %d carries token %d", i, c.Token)
			}
		}
		if comps[1].Err != nil || comps[1].Val != 7 {
			t.Errorf("posted CAS saw %d, want 7 (in-order effects)", comps[1].Val)
		}
		if comps[2].Err != nil || comps[2].Val != 70 {
			t.Errorf("posted FAA saw %d, want 70", comps[2].Val)
		}
		if dst[0] != 75 || dst[1] != 8 {
			t.Errorf("posted read %v, want [75 8]", dst)
		}
		if comps[4].Err != nil || len(comps[4].Resp) != 2 || comps[4].Resp[0] != 1 || comps[4].Resp[1] != 9 {
			t.Errorf("posted call: %+v", comps[4])
		}
		if comps[5].Err == nil {
			t.Error("null-pointer post completed without error")
		}
	})
	s.Run()
}

// TestServerCoreLoad drives RPCs at a server whose handler charges heavy CPU
// work and checks the load probe: idle before traffic, high (in [0,1])
// while handlers saturate, sampled over >= loadSampleNS windows.
func TestServerCoreLoad(t *testing.T) {
	s := sim.New()
	cfg := NewConfig(testTopology())
	cfg.HandlerCoresPerMachine = 2
	cfg.HandlersPerServer = 2
	f := New(s, cfg)
	probe := f.ServerCoreLoad(0)
	var busy []float64
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		env.Charge(40_000)
		busy = append(busy, probe())
		return req, rdma.Work{}
	})
	f.Start()
	if got := probe(); got != 0 {
		t.Fatalf("idle probe = %v, want 0", got)
	}
	for c := 0; c < 4; c++ {
		c := c
		s.Spawn("c", func(p *sim.Proc) {
			ep := f.Endpoint(c%2, p)
			for i := 0; i < 40; i++ {
				if _, err := ep.Call(0, []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	s.RunUntil(50_000_000)
	s.Shutdown()
	if len(busy) == 0 {
		t.Fatal("handler never ran")
	}
	maxU := 0.0
	for _, u := range busy {
		if u < 0 || u > 1 {
			t.Fatalf("probe out of range: %v", u)
		}
		if u > maxU {
			maxU = u
		}
	}
	// Four closed-loop clients against a 2-core pool charging 40µs per
	// request keep the pool near saturation once the first sampling window
	// has elapsed.
	if maxU < 0.5 {
		t.Fatalf("saturated pool never sampled above 0.5 (max %v)", maxU)
	}
}
