package rdma

import "fmt"

// SingleServerFabric adapts one memory server process to the Fabric
// interface for server-side design code (coarse-grained handlers, hybrid
// upper levels) that only ever touches its own server. It reports the full
// cluster size but can hand out only the local server — exactly the view a
// real memory-server process has.
type SingleServerFabric struct {
	Srv   *Server
	Total int
	h     Handler
}

var _ Fabric = (*SingleServerFabric)(nil)

// NumServers implements Fabric.
func (f *SingleServerFabric) NumServers() int { return f.Total }

// Server implements Fabric; requesting any server but the local one is a
// programming error in this deployment model.
func (f *SingleServerFabric) Server(i int) *Server {
	if i != f.Srv.ID {
		panic(fmt.Sprintf("rdma: single-server fabric for %d asked for server %d", f.Srv.ID, i))
	}
	return f.Srv
}

// SetHandler implements Fabric.
func (f *SingleServerFabric) SetHandler(h Handler) { f.h = h }

// Handler returns the installed handler (for wiring into a transport agent).
func (f *SingleServerFabric) Handler() Handler { return f.h }
