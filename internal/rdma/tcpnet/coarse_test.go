package tcpnet

import (
	"net"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
)

// TestCoarseDesignOverTCP deploys the coarse-grained design the way
// cmd/namserver does: one process-like agent per memory server, each owning
// a SingleServerFabric, building only its own partition, and serving the
// RPC protocol; clients drive it through coarse.Client over TCP endpoints.
func TestCoarseDesignOverTCP(t *testing.T) {
	const (
		servers  = 3
		keyspace = 9_000
	)
	spec := core.BuildSpec{
		N:  keyspace,
		At: func(i int) (uint64, uint64) { return uint64(i), uint64(i) * 3 },
	}
	var addrs []string
	var cat *nam.Catalog
	for id := 0; id < servers; id++ {
		srv := rdma.NewServer(id, 32<<20, nam.SuperblockBytes)
		fab := &rdma.SingleServerFabric{Srv: srv, Total: servers}
		cs := coarse.NewServer(fab, coarse.Options{
			Layout: layout.New(512),
			Part:   partition.NewRangeUniform(servers, keyspace),
		})
		if err := cs.BuildServer(id, spec); err != nil {
			t.Fatal(err)
		}
		cat = cs.Catalog()
		agent := NewAgent(srv, cs.Handler())
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		go agent.Serve(l)
		t.Cleanup(agent.Close)
	}

	ep := Dial(addrs)
	defer ep.Close()
	idx := coarse.NewClient(ep, rdma.NopEnv{}, cat)

	// Point lookups from every partition.
	for _, k := range []uint64{0, 2999, 3000, 5999, 6000, 8999} {
		vals, err := idx.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != k*3 {
			t.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
	// A range spanning all three partitions, in order.
	var got []uint64
	if err := idx.Range(2990, 6010, func(k, v uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3021 {
		t.Fatalf("cross-partition range returned %d entries; want 3021", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("range out of order at %d", i)
		}
	}
	// Concurrent clients mutate through RPC.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := Dial(addrs)
			defer ep.Close()
			idx := coarse.NewClient(ep, rdma.NopEnv{}, cat)
			for i := 0; i < 200; i++ {
				k := uint64((c*200 + i) * 45 % keyspace)
				v := uint64(c)<<32 | uint64(i)
				if err := idx.Insert(k, v); err != nil {
					t.Error(err)
					return
				}
				ok, err := idx.Delete(k, v)
				if err != nil || !ok {
					t.Errorf("delete (%d,%d): %v %v", k, v, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
