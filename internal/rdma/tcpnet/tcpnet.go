// Package tcpnet implements the rdma verbs API over TCP sockets, so a NAM
// cluster can actually be deployed as separate memory-server and
// compute-client processes (cmd/namserver, cmd/namclient).
//
// Each memory server runs an Agent: a TCP listener whose per-connection
// loops service one-sided verbs against the server's region (the software
// analogue of the NIC's DMA engine, like soft-RoCE) and dispatch two-sided
// RPCs to the registered handler. A client endpoint holds one connection per
// memory server — its "queue pair" — and issues synchronous verbs over it.
//
// The wire format is length-prefixed little-endian frames:
//
//	request:  [u32 length][u8 verb][payload...]
//	response: [u32 length][u8 status][payload...]
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Verb opcodes.
const (
	opRead = iota + 1
	opWrite
	opCAS
	opFetchAdd
	opAlloc
	opFree
	opCall
	opReadMulti
	opCatalog
)

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single frame (16 MiB), protecting the agent from
// malformed lengths.
const maxFrame = 16 << 20

var order = binary.LittleEndian

// Agent serves one memory server's region over TCP.
type Agent struct {
	srv     *rdma.Server
	handler rdma.Handler
	catalog []byte

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewAgent creates an agent for a server. handler may be nil if the
// deployment uses only one-sided verbs.
func NewAgent(srv *rdma.Server, handler rdma.Handler) *Agent {
	return &Agent{srv: srv, handler: handler, conns: make(map[net.Conn]struct{})}
}

// SetCatalog installs the serialized catalog served to clients (opCatalog).
func (a *Agent) SetCatalog(c []byte) { a.catalog = c }

// Serve accepts connections on l until Close. It returns after the listener
// is closed.
func (a *Agent) Serve(l net.Listener) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("tcpnet: agent closed")
	}
	a.listener = l
	a.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return nil
		}
		a.conns[conn] = struct{}{}
		a.wg.Add(1)
		a.mu.Unlock()
		go func() {
			defer a.wg.Done()
			a.serveConn(conn)
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

// Close shuts the agent down: stops accepting, closes connections, waits for
// per-connection loops.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	if a.listener != nil {
		a.listener.Close()
	}
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
}

type agentEnv struct{}

func (agentEnv) Charge(int64) {}
func (agentEnv) Pause()       { runtime.Gosched() }

func (a *Agent) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		frame, err := readFrame(r)
		if err != nil {
			return // client disconnected or protocol error
		}
		resp, err := a.handle(frame)
		if err != nil {
			resp = append([]byte{statusErr}, []byte(err.Error())...)
		}
		if err := writeFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle executes one verb frame and returns the response frame body.
func (a *Agent) handle(frame []byte) ([]byte, error) {
	if len(frame) < 1 {
		return nil, fmt.Errorf("empty frame")
	}
	op, body := frame[0], frame[1:]
	switch op {
	case opRead:
		if len(body) < 12 {
			return nil, fmt.Errorf("short read request")
		}
		off := order.Uint64(body)
		words := int(order.Uint32(body[8:]))
		if words < 0 || words*8 > maxFrame {
			return nil, fmt.Errorf("read too large")
		}
		out := make([]byte, 1+8*words)
		out[0] = statusOK
		buf := make([]uint64, words)
		a.srv.Region.Read(off, buf)
		for i, v := range buf {
			order.PutUint64(out[1+8*i:], v)
		}
		return out, nil
	case opWrite:
		if len(body) < 8 || (len(body)-8)%8 != 0 {
			return nil, fmt.Errorf("bad write request")
		}
		off := order.Uint64(body)
		words := (len(body) - 8) / 8
		buf := make([]uint64, words)
		for i := range buf {
			buf[i] = order.Uint64(body[8+8*i:])
		}
		a.srv.Region.Write(off, buf)
		return []byte{statusOK}, nil
	case opCAS:
		if len(body) != 24 {
			return nil, fmt.Errorf("bad CAS request")
		}
		//rdmavet:allow caschecked -- transport relay: the prior value is returned to the remote client, which performs the old-value comparison
		prior := a.srv.Region.CompareAndSwap(order.Uint64(body), order.Uint64(body[8:]), order.Uint64(body[16:]))
		out := make([]byte, 9)
		out[0] = statusOK
		order.PutUint64(out[1:], prior)
		return out, nil
	case opFetchAdd:
		if len(body) != 16 {
			return nil, fmt.Errorf("bad FAA request")
		}
		prior := a.srv.Region.FetchAdd(order.Uint64(body), order.Uint64(body[8:]))
		out := make([]byte, 9)
		out[0] = statusOK
		order.PutUint64(out[1:], prior)
		return out, nil
	case opAlloc:
		if len(body) != 4 {
			return nil, fmt.Errorf("bad alloc request")
		}
		off, err := a.srv.Alloc.Alloc(int(order.Uint32(body)))
		if err != nil {
			return nil, err
		}
		out := make([]byte, 9)
		out[0] = statusOK
		order.PutUint64(out[1:], off)
		return out, nil
	case opFree:
		if len(body) != 12 {
			return nil, fmt.Errorf("bad free request")
		}
		a.srv.Alloc.Free(order.Uint64(body), int(order.Uint32(body[8:])))
		return []byte{statusOK}, nil
	case opCall:
		if a.handler == nil {
			return nil, fmt.Errorf("no RPC handler")
		}
		resp, _ := a.handler(agentEnv{}, a.srv.ID, body)
		return append([]byte{statusOK}, resp...), nil
	case opReadMulti:
		if len(body) < 4 {
			return nil, fmt.Errorf("bad readmulti request")
		}
		n := int(order.Uint32(body))
		if len(body) != 4+12*n {
			return nil, fmt.Errorf("bad readmulti request body")
		}
		total := 0
		for i := 0; i < n; i++ {
			total += int(order.Uint32(body[4+12*i+8:]))
		}
		if total*8 > maxFrame {
			return nil, fmt.Errorf("readmulti too large")
		}
		out := make([]byte, 1, 1+8*total)
		out[0] = statusOK
		for i := 0; i < n; i++ {
			off := order.Uint64(body[4+12*i:])
			words := int(order.Uint32(body[4+12*i+8:]))
			buf := make([]uint64, words)
			a.srv.Region.Read(off, buf)
			for _, v := range buf {
				out = order.AppendUint64(out, v)
			}
		}
		return out, nil
	case opCatalog:
		if a.catalog == nil {
			return nil, fmt.Errorf("no catalog installed")
		}
		return append([]byte{statusOK}, a.catalog...), nil
	default:
		return nil, fmt.Errorf("unknown verb %d", op)
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := order.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w *bufio.Writer, body []byte) error {
	var hdr [4]byte
	order.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Endpoint is a client-side verbs endpoint over TCP: one connection ("queue
// pair") per memory server. It is not safe for concurrent use — create one
// per client thread, as with the other transports.
type Endpoint struct {
	addrs []string
	conns []net.Conn
	rds   []*bufio.Reader
	wrs   []*bufio.Writer

	// Async post/poll state (see Poll).
	q       rdma.PostQueue
	written int     // pending verbs already encoded onto the wire
	srvErr  []error // sticky per-server failure for the current batch
}

var _ rdma.Endpoint = (*Endpoint)(nil)

// Dial creates an endpoint for the given ordered memory-server addresses.
// Connections are opened lazily.
func Dial(addrs []string) *Endpoint {
	return &Endpoint{
		addrs: addrs,
		conns: make([]net.Conn, len(addrs)),
		rds:   make([]*bufio.Reader, len(addrs)),
		wrs:   make([]*bufio.Writer, len(addrs)),
	}
}

// Close closes all connections.
func (e *Endpoint) Close() {
	for i, c := range e.conns {
		if c != nil {
			c.Close()
			e.conns[i] = nil
		}
	}
}

// NumServers implements rdma.Endpoint.
func (e *Endpoint) NumServers() int { return len(e.addrs) }

func (e *Endpoint) conn(server int) (*bufio.Reader, *bufio.Writer, error) {
	if server < 0 || server >= len(e.addrs) {
		return nil, nil, fmt.Errorf("tcpnet: unknown server %d", server)
	}
	if e.conns[server] == nil {
		c, err := net.Dial("tcp", e.addrs[server])
		if err != nil {
			return nil, nil, fmt.Errorf("tcpnet: dialing server %d: %w", server, err)
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		e.conns[server] = c
		e.rds[server] = bufio.NewReaderSize(c, 64<<10)
		e.wrs[server] = bufio.NewWriterSize(c, 64<<10)
	}
	return e.rds[server], e.wrs[server], nil
}

// roundTrip sends one verb frame and returns the response payload.
func (e *Endpoint) roundTrip(server int, frame []byte) ([]byte, error) {
	r, w, err := e.conn(server)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(w, frame); err != nil {
		return nil, e.fail(server, err)
	}
	if err := w.Flush(); err != nil {
		return nil, e.fail(server, err)
	}
	resp, err := readFrame(r)
	if err != nil {
		return nil, e.fail(server, err)
	}
	if len(resp) < 1 {
		return nil, e.fail(server, fmt.Errorf("tcpnet: empty response"))
	}
	if resp[0] != statusOK {
		return nil, fmt.Errorf("tcpnet: server %d: %s", server, resp[1:])
	}
	return resp[1:], nil
}

// fail tears down the connection so the next verb re-dials.
func (e *Endpoint) fail(server int, err error) error {
	if e.conns[server] != nil {
		e.conns[server].Close()
		e.conns[server] = nil
	}
	return err
}

// Read implements rdma.Endpoint.
func (e *Endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	if p.IsNull() {
		return fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 13)
	frame[0] = opRead
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint32(frame[9:], uint32(len(dst)))
	body, err := e.roundTrip(p.Server(), frame)
	if err != nil {
		return err
	}
	if len(body) != 8*len(dst) {
		return fmt.Errorf("tcpnet: short read response")
	}
	for i := range dst {
		dst[i] = order.Uint64(body[8*i:])
	}
	return nil
}

// ReadMulti implements rdma.Endpoint: pointers are grouped per server and
// each group fetched in one round trip.
func (e *Endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	type item struct{ idx int }
	groups := make(map[int][]int)
	for i, p := range ps {
		if p.IsNull() {
			return fmt.Errorf("tcpnet: null pointer in batch")
		}
		groups[p.Server()] = append(groups[p.Server()], i)
	}
	for server := 0; server < len(e.addrs); server++ {
		idxs := groups[server]
		if len(idxs) == 0 {
			continue
		}
		frame := make([]byte, 5+12*len(idxs))
		frame[0] = opReadMulti
		order.PutUint32(frame[1:], uint32(len(idxs)))
		for j, i := range idxs {
			order.PutUint64(frame[5+12*j:], ps[i].Offset())
			order.PutUint32(frame[5+12*j+8:], uint32(len(dst[i])))
		}
		body, err := e.roundTrip(server, frame)
		if err != nil {
			return err
		}
		off := 0
		for _, i := range idxs {
			if off+8*len(dst[i]) > len(body) {
				return fmt.Errorf("tcpnet: short readmulti response")
			}
			for k := range dst[i] {
				dst[i][k] = order.Uint64(body[off:])
				off += 8
			}
		}
	}
	return nil
}

// Write implements rdma.Endpoint.
func (e *Endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	if p.IsNull() {
		return fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 9+8*len(src))
	frame[0] = opWrite
	order.PutUint64(frame[1:], p.Offset())
	for i, v := range src {
		order.PutUint64(frame[9+8*i:], v)
	}
	_, err := e.roundTrip(p.Server(), frame)
	return err
}

// CompareAndSwap implements rdma.Endpoint.
func (e *Endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	if p.IsNull() {
		return 0, fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 25)
	frame[0] = opCAS
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint64(frame[9:], old)
	order.PutUint64(frame[17:], new)
	body, err := e.roundTrip(p.Server(), frame)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("tcpnet: bad CAS response")
	}
	return order.Uint64(body), nil
}

// FetchAdd implements rdma.Endpoint.
func (e *Endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	if p.IsNull() {
		return 0, fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 17)
	frame[0] = opFetchAdd
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint64(frame[9:], delta)
	body, err := e.roundTrip(p.Server(), frame)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("tcpnet: bad FAA response")
	}
	return order.Uint64(body), nil
}

// Alloc implements rdma.Endpoint.
func (e *Endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	frame := make([]byte, 5)
	frame[0] = opAlloc
	order.PutUint32(frame[1:], uint32(n))
	body, err := e.roundTrip(server, frame)
	if err != nil {
		return rdma.NullPtr, err
	}
	if len(body) != 8 {
		return rdma.NullPtr, fmt.Errorf("tcpnet: bad alloc response")
	}
	return rdma.MakePtr(server, order.Uint64(body)), nil
}

// Free implements rdma.Endpoint.
func (e *Endpoint) Free(p rdma.RemotePtr, n int) error {
	if p.IsNull() {
		return fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 13)
	frame[0] = opFree
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint32(frame[9:], uint32(n))
	_, err := e.roundTrip(p.Server(), frame)
	return err
}

// Call implements rdma.Endpoint.
func (e *Endpoint) Call(server int, req []byte) ([]byte, error) {
	frame := make([]byte, 1+len(req))
	frame[0] = opCall
	copy(frame[1:], req)
	return e.roundTrip(server, frame)
}

// Catalog fetches the serialized catalog from a server.
func (e *Endpoint) Catalog(server int) ([]byte, error) {
	return e.roundTrip(server, []byte{opCatalog})
}

// --- non-blocking post/poll surface (rdma.AsyncEndpoint) -----------------
//
// Posted verbs are buffered client-side; Flush encodes and writes every
// buffered frame (per-server pipelining on the TCP "queue pairs") and Poll
// reads the replies back in global posting order. Each agent connection
// serves frames sequentially, so per-server reply order matches per-server
// request order — the TCP analogue of RC in-order execution — and reading
// replies in posting order across servers just interleaves already-ordered
// streams. A connection failure fails the remaining completions of that
// server's batch (the verbs may or may not have executed; like the blocking
// path, the conn is torn down so the next verb re-dials) without touching
// other servers' verbs.

var _ rdma.AsyncEndpoint = (*Endpoint)(nil)

// PostRead implements rdma.AsyncEndpoint.
func (e *Endpoint) PostRead(p rdma.RemotePtr, dst []uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpRead, P: p, Dst: dst})
}

// PostWrite implements rdma.AsyncEndpoint.
func (e *Endpoint) PostWrite(p rdma.RemotePtr, src []uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpWrite, P: p, Src: src})
}

// PostCAS implements rdma.AsyncEndpoint.
func (e *Endpoint) PostCAS(p rdma.RemotePtr, old, new uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpCAS, P: p, A: old, B: new})
}

// PostFetchAdd implements rdma.AsyncEndpoint.
func (e *Endpoint) PostFetchAdd(p rdma.RemotePtr, delta uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpFetchAdd, P: p, A: delta})
}

// PostCall implements rdma.AsyncEndpoint.
func (e *Endpoint) PostCall(server int, req []byte) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpCall, Server: server, Req: req})
}

// postTarget validates a posted verb's destination. Invalid verbs produce no
// wire traffic; Flush and Poll both call this, so the skip decisions agree.
func (e *Endpoint) postTarget(v *rdma.Posted) (int, error) {
	if v.Op == rdma.PostOpCall {
		if v.Server < 0 || v.Server >= len(e.addrs) {
			return -1, fmt.Errorf("tcpnet: unknown server %d", v.Server)
		}
		return v.Server, nil
	}
	if v.P.IsNull() {
		return -1, fmt.Errorf("tcpnet: null pointer")
	}
	if v.P.Server() >= len(e.addrs) {
		return -1, fmt.Errorf("tcpnet: unknown server %d", v.P.Server())
	}
	return v.P.Server(), nil
}

// encodePosted builds the wire frame for a buffered verb.
func encodePosted(v *rdma.Posted) []byte {
	switch v.Op {
	case rdma.PostOpRead:
		frame := make([]byte, 13)
		frame[0] = opRead
		order.PutUint64(frame[1:], v.P.Offset())
		order.PutUint32(frame[9:], uint32(len(v.Dst)))
		return frame
	case rdma.PostOpWrite:
		frame := make([]byte, 9+8*len(v.Src))
		frame[0] = opWrite
		order.PutUint64(frame[1:], v.P.Offset())
		for i, w := range v.Src {
			order.PutUint64(frame[9+8*i:], w)
		}
		return frame
	case rdma.PostOpCAS:
		frame := make([]byte, 25)
		frame[0] = opCAS
		order.PutUint64(frame[1:], v.P.Offset())
		order.PutUint64(frame[9:], v.A)
		order.PutUint64(frame[17:], v.B)
		return frame
	case rdma.PostOpFetchAdd:
		frame := make([]byte, 17)
		frame[0] = opFetchAdd
		order.PutUint64(frame[1:], v.P.Offset())
		order.PutUint64(frame[9:], v.A)
		return frame
	case rdma.PostOpCall:
		frame := make([]byte, 1+len(v.Req))
		frame[0] = opCall
		copy(frame[1:], v.Req)
		return frame
	}
	panic(fmt.Sprintf("tcpnet: unknown posted op %d", v.Op))
}

// Flush implements rdma.AsyncEndpoint: every buffered verb not yet on the
// wire is encoded and written, then each touched connection is flushed.
func (e *Endpoint) Flush() {
	pending := e.q.Pending()
	if e.written == len(pending) {
		return
	}
	if e.srvErr == nil {
		e.srvErr = make([]error, len(e.addrs))
	}
	dirty := false
	for i := e.written; i < len(pending); i++ {
		v := &pending[i]
		server, err := e.postTarget(v)
		if err != nil || e.srvErr[server] != nil {
			continue
		}
		_, w, err := e.conn(server)
		if err != nil {
			e.srvErr[server] = err
			continue
		}
		if err := writeFrame(w, encodePosted(v)); err != nil {
			e.srvErr[server] = e.fail(server, err)
			continue
		}
		dirty = true
	}
	e.written = len(pending)
	if !dirty {
		return
	}
	for server, w := range e.wrs {
		if w == nil || e.srvErr[server] != nil || e.conns[server] == nil {
			continue
		}
		if err := w.Flush(); err != nil {
			e.srvErr[server] = e.fail(server, err)
		}
	}
}

// Poll implements rdma.AsyncEndpoint.
func (e *Endpoint) Poll(out []rdma.Completion) []rdma.Completion {
	pending := e.q.Pending()
	if len(pending) == 0 {
		return out
	}
	e.Flush()
	for i := range pending {
		v := &pending[i]
		c := rdma.Completion{Token: v.Tok}
		server, err := e.postTarget(v)
		if err != nil {
			c.Err = err
			out = append(out, c)
			continue
		}
		if e.srvErr[server] != nil {
			c.Err = e.srvErr[server]
			out = append(out, c)
			continue
		}
		body, err := e.readReply(server)
		if err != nil {
			c.Err = err
			out = append(out, c)
			continue
		}
		switch v.Op {
		case rdma.PostOpRead:
			if len(body) != 8*len(v.Dst) {
				c.Err = fmt.Errorf("tcpnet: short read response")
				break
			}
			for k := range v.Dst {
				v.Dst[k] = order.Uint64(body[8*k:])
			}
		case rdma.PostOpCAS, rdma.PostOpFetchAdd:
			if len(body) != 8 {
				c.Err = fmt.Errorf("tcpnet: bad atomic response")
				break
			}
			c.Val = order.Uint64(body)
		case rdma.PostOpCall:
			c.Resp = body
		}
		out = append(out, c)
	}
	e.q.Clear()
	e.written = 0
	for i := range e.srvErr {
		e.srvErr[i] = nil
	}
	return out
}

// readReply reads one in-order reply frame from a server's connection,
// converting a transport failure into a sticky per-server batch error.
func (e *Endpoint) readReply(server int) ([]byte, error) {
	r := e.rds[server]
	if r == nil || e.conns[server] == nil {
		err := fmt.Errorf("tcpnet: connection to server %d lost", server)
		e.srvErr[server] = err
		return nil, err
	}
	resp, err := readFrame(r)
	if err != nil {
		e.srvErr[server] = e.fail(server, err)
		return nil, e.srvErr[server]
	}
	if len(resp) < 1 {
		e.srvErr[server] = e.fail(server, fmt.Errorf("tcpnet: empty response"))
		return nil, e.srvErr[server]
	}
	if resp[0] != statusOK {
		// A verb-level rejection: the connection stays healthy.
		return nil, fmt.Errorf("tcpnet: server %d: %s", server, resp[1:])
	}
	return resp[1:], nil
}
