// Package tcpnet implements the rdma verbs API over TCP sockets, so a NAM
// cluster can actually be deployed as separate memory-server and
// compute-client processes (cmd/namserver, cmd/namclient).
//
// Each memory server runs an Agent: a TCP listener whose per-connection
// loops service one-sided verbs against the server's region (the software
// analogue of the NIC's DMA engine, like soft-RoCE) and dispatch two-sided
// RPCs to the registered handler. A client endpoint holds one connection per
// memory server — its "queue pair" — and issues synchronous verbs over it.
//
// The wire format is length-prefixed little-endian frames:
//
//	request:  [u32 length][u8 verb][payload...]
//	response: [u32 length][u8 status][payload...]
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Verb opcodes.
const (
	opRead = iota + 1
	opWrite
	opCAS
	opFetchAdd
	opAlloc
	opFree
	opCall
	opReadMulti
	opCatalog
)

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single frame (16 MiB), protecting the agent from
// malformed lengths.
const maxFrame = 16 << 20

var order = binary.LittleEndian

// Agent serves one memory server's region over TCP.
type Agent struct {
	srv     *rdma.Server
	handler rdma.Handler
	catalog []byte

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewAgent creates an agent for a server. handler may be nil if the
// deployment uses only one-sided verbs.
func NewAgent(srv *rdma.Server, handler rdma.Handler) *Agent {
	return &Agent{srv: srv, handler: handler, conns: make(map[net.Conn]struct{})}
}

// SetCatalog installs the serialized catalog served to clients (opCatalog).
func (a *Agent) SetCatalog(c []byte) { a.catalog = c }

// Serve accepts connections on l until Close. It returns after the listener
// is closed.
func (a *Agent) Serve(l net.Listener) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("tcpnet: agent closed")
	}
	a.listener = l
	a.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return nil
		}
		a.conns[conn] = struct{}{}
		a.wg.Add(1)
		a.mu.Unlock()
		go func() {
			defer a.wg.Done()
			a.serveConn(conn)
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

// Close shuts the agent down: stops accepting, closes connections, waits for
// per-connection loops.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	if a.listener != nil {
		a.listener.Close()
	}
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
}

type agentEnv struct{}

func (agentEnv) Charge(int64) {}
func (agentEnv) Pause()       { runtime.Gosched() }

func (a *Agent) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		frame, err := readFrame(r)
		if err != nil {
			return // client disconnected or protocol error
		}
		resp, err := a.handle(frame)
		if err != nil {
			resp = append([]byte{statusErr}, []byte(err.Error())...)
		}
		if err := writeFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle executes one verb frame and returns the response frame body.
func (a *Agent) handle(frame []byte) ([]byte, error) {
	if len(frame) < 1 {
		return nil, fmt.Errorf("empty frame")
	}
	op, body := frame[0], frame[1:]
	switch op {
	case opRead:
		if len(body) < 12 {
			return nil, fmt.Errorf("short read request")
		}
		off := order.Uint64(body)
		words := int(order.Uint32(body[8:]))
		if words < 0 || words*8 > maxFrame {
			return nil, fmt.Errorf("read too large")
		}
		out := make([]byte, 1+8*words)
		out[0] = statusOK
		buf := make([]uint64, words)
		a.srv.Region.Read(off, buf)
		for i, v := range buf {
			order.PutUint64(out[1+8*i:], v)
		}
		return out, nil
	case opWrite:
		if len(body) < 8 || (len(body)-8)%8 != 0 {
			return nil, fmt.Errorf("bad write request")
		}
		off := order.Uint64(body)
		words := (len(body) - 8) / 8
		buf := make([]uint64, words)
		for i := range buf {
			buf[i] = order.Uint64(body[8+8*i:])
		}
		a.srv.Region.Write(off, buf)
		return []byte{statusOK}, nil
	case opCAS:
		if len(body) != 24 {
			return nil, fmt.Errorf("bad CAS request")
		}
		//rdmavet:allow caschecked -- transport relay: the prior value is returned to the remote client, which performs the old-value comparison
		prior := a.srv.Region.CompareAndSwap(order.Uint64(body), order.Uint64(body[8:]), order.Uint64(body[16:]))
		out := make([]byte, 9)
		out[0] = statusOK
		order.PutUint64(out[1:], prior)
		return out, nil
	case opFetchAdd:
		if len(body) != 16 {
			return nil, fmt.Errorf("bad FAA request")
		}
		prior := a.srv.Region.FetchAdd(order.Uint64(body), order.Uint64(body[8:]))
		out := make([]byte, 9)
		out[0] = statusOK
		order.PutUint64(out[1:], prior)
		return out, nil
	case opAlloc:
		if len(body) != 4 {
			return nil, fmt.Errorf("bad alloc request")
		}
		off, err := a.srv.Alloc.Alloc(int(order.Uint32(body)))
		if err != nil {
			return nil, err
		}
		out := make([]byte, 9)
		out[0] = statusOK
		order.PutUint64(out[1:], off)
		return out, nil
	case opFree:
		if len(body) != 12 {
			return nil, fmt.Errorf("bad free request")
		}
		a.srv.Alloc.Free(order.Uint64(body), int(order.Uint32(body[8:])))
		return []byte{statusOK}, nil
	case opCall:
		if a.handler == nil {
			return nil, fmt.Errorf("no RPC handler")
		}
		resp, _ := a.handler(agentEnv{}, a.srv.ID, body)
		return append([]byte{statusOK}, resp...), nil
	case opReadMulti:
		if len(body) < 4 {
			return nil, fmt.Errorf("bad readmulti request")
		}
		n := int(order.Uint32(body))
		if len(body) != 4+12*n {
			return nil, fmt.Errorf("bad readmulti request body")
		}
		total := 0
		for i := 0; i < n; i++ {
			total += int(order.Uint32(body[4+12*i+8:]))
		}
		if total*8 > maxFrame {
			return nil, fmt.Errorf("readmulti too large")
		}
		out := make([]byte, 1, 1+8*total)
		out[0] = statusOK
		for i := 0; i < n; i++ {
			off := order.Uint64(body[4+12*i:])
			words := int(order.Uint32(body[4+12*i+8:]))
			buf := make([]uint64, words)
			a.srv.Region.Read(off, buf)
			for _, v := range buf {
				out = order.AppendUint64(out, v)
			}
		}
		return out, nil
	case opCatalog:
		if a.catalog == nil {
			return nil, fmt.Errorf("no catalog installed")
		}
		return append([]byte{statusOK}, a.catalog...), nil
	default:
		return nil, fmt.Errorf("unknown verb %d", op)
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := order.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w *bufio.Writer, body []byte) error {
	var hdr [4]byte
	order.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Endpoint is a client-side verbs endpoint over TCP: one connection ("queue
// pair") per memory server. It is not safe for concurrent use — create one
// per client thread, as with the other transports.
type Endpoint struct {
	addrs []string
	conns []net.Conn
	rds   []*bufio.Reader
	wrs   []*bufio.Writer
}

var _ rdma.Endpoint = (*Endpoint)(nil)

// Dial creates an endpoint for the given ordered memory-server addresses.
// Connections are opened lazily.
func Dial(addrs []string) *Endpoint {
	return &Endpoint{
		addrs: addrs,
		conns: make([]net.Conn, len(addrs)),
		rds:   make([]*bufio.Reader, len(addrs)),
		wrs:   make([]*bufio.Writer, len(addrs)),
	}
}

// Close closes all connections.
func (e *Endpoint) Close() {
	for i, c := range e.conns {
		if c != nil {
			c.Close()
			e.conns[i] = nil
		}
	}
}

// NumServers implements rdma.Endpoint.
func (e *Endpoint) NumServers() int { return len(e.addrs) }

func (e *Endpoint) conn(server int) (*bufio.Reader, *bufio.Writer, error) {
	if server < 0 || server >= len(e.addrs) {
		return nil, nil, fmt.Errorf("tcpnet: unknown server %d", server)
	}
	if e.conns[server] == nil {
		c, err := net.Dial("tcp", e.addrs[server])
		if err != nil {
			return nil, nil, fmt.Errorf("tcpnet: dialing server %d: %w", server, err)
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		e.conns[server] = c
		e.rds[server] = bufio.NewReaderSize(c, 64<<10)
		e.wrs[server] = bufio.NewWriterSize(c, 64<<10)
	}
	return e.rds[server], e.wrs[server], nil
}

// roundTrip sends one verb frame and returns the response payload.
func (e *Endpoint) roundTrip(server int, frame []byte) ([]byte, error) {
	r, w, err := e.conn(server)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(w, frame); err != nil {
		return nil, e.fail(server, err)
	}
	if err := w.Flush(); err != nil {
		return nil, e.fail(server, err)
	}
	resp, err := readFrame(r)
	if err != nil {
		return nil, e.fail(server, err)
	}
	if len(resp) < 1 {
		return nil, e.fail(server, fmt.Errorf("tcpnet: empty response"))
	}
	if resp[0] != statusOK {
		return nil, fmt.Errorf("tcpnet: server %d: %s", server, resp[1:])
	}
	return resp[1:], nil
}

// fail tears down the connection so the next verb re-dials.
func (e *Endpoint) fail(server int, err error) error {
	if e.conns[server] != nil {
		e.conns[server].Close()
		e.conns[server] = nil
	}
	return err
}

// Read implements rdma.Endpoint.
func (e *Endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	if p.IsNull() {
		return fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 13)
	frame[0] = opRead
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint32(frame[9:], uint32(len(dst)))
	body, err := e.roundTrip(p.Server(), frame)
	if err != nil {
		return err
	}
	if len(body) != 8*len(dst) {
		return fmt.Errorf("tcpnet: short read response")
	}
	for i := range dst {
		dst[i] = order.Uint64(body[8*i:])
	}
	return nil
}

// ReadMulti implements rdma.Endpoint: pointers are grouped per server and
// each group fetched in one round trip.
func (e *Endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	type item struct{ idx int }
	groups := make(map[int][]int)
	for i, p := range ps {
		if p.IsNull() {
			return fmt.Errorf("tcpnet: null pointer in batch")
		}
		groups[p.Server()] = append(groups[p.Server()], i)
	}
	for server := 0; server < len(e.addrs); server++ {
		idxs := groups[server]
		if len(idxs) == 0 {
			continue
		}
		frame := make([]byte, 5+12*len(idxs))
		frame[0] = opReadMulti
		order.PutUint32(frame[1:], uint32(len(idxs)))
		for j, i := range idxs {
			order.PutUint64(frame[5+12*j:], ps[i].Offset())
			order.PutUint32(frame[5+12*j+8:], uint32(len(dst[i])))
		}
		body, err := e.roundTrip(server, frame)
		if err != nil {
			return err
		}
		off := 0
		for _, i := range idxs {
			if off+8*len(dst[i]) > len(body) {
				return fmt.Errorf("tcpnet: short readmulti response")
			}
			for k := range dst[i] {
				dst[i][k] = order.Uint64(body[off:])
				off += 8
			}
		}
	}
	return nil
}

// Write implements rdma.Endpoint.
func (e *Endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	if p.IsNull() {
		return fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 9+8*len(src))
	frame[0] = opWrite
	order.PutUint64(frame[1:], p.Offset())
	for i, v := range src {
		order.PutUint64(frame[9+8*i:], v)
	}
	_, err := e.roundTrip(p.Server(), frame)
	return err
}

// CompareAndSwap implements rdma.Endpoint.
func (e *Endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	if p.IsNull() {
		return 0, fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 25)
	frame[0] = opCAS
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint64(frame[9:], old)
	order.PutUint64(frame[17:], new)
	body, err := e.roundTrip(p.Server(), frame)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("tcpnet: bad CAS response")
	}
	return order.Uint64(body), nil
}

// FetchAdd implements rdma.Endpoint.
func (e *Endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	if p.IsNull() {
		return 0, fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 17)
	frame[0] = opFetchAdd
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint64(frame[9:], delta)
	body, err := e.roundTrip(p.Server(), frame)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, fmt.Errorf("tcpnet: bad FAA response")
	}
	return order.Uint64(body), nil
}

// Alloc implements rdma.Endpoint.
func (e *Endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	frame := make([]byte, 5)
	frame[0] = opAlloc
	order.PutUint32(frame[1:], uint32(n))
	body, err := e.roundTrip(server, frame)
	if err != nil {
		return rdma.NullPtr, err
	}
	if len(body) != 8 {
		return rdma.NullPtr, fmt.Errorf("tcpnet: bad alloc response")
	}
	return rdma.MakePtr(server, order.Uint64(body)), nil
}

// Free implements rdma.Endpoint.
func (e *Endpoint) Free(p rdma.RemotePtr, n int) error {
	if p.IsNull() {
		return fmt.Errorf("tcpnet: null pointer")
	}
	frame := make([]byte, 13)
	frame[0] = opFree
	order.PutUint64(frame[1:], p.Offset())
	order.PutUint32(frame[9:], uint32(n))
	_, err := e.roundTrip(p.Server(), frame)
	return err
}

// Call implements rdma.Endpoint.
func (e *Endpoint) Call(server int, req []byte) ([]byte, error) {
	frame := make([]byte, 1+len(req))
	frame[0] = opCall
	copy(frame[1:], req)
	return e.roundTrip(server, frame)
}

// Catalog fetches the serialized catalog from a server.
func (e *Endpoint) Catalog(server int) ([]byte, error) {
	return e.roundTrip(server, []byte{opCatalog})
}
