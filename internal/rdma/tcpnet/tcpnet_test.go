package tcpnet

import (
	"net"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
)

// startCluster launches n in-process agents on ephemeral ports.
func startCluster(t *testing.T, n int, handler rdma.Handler) ([]string, []*Agent) {
	t.Helper()
	var addrs []string
	var agents []*Agent
	for i := 0; i < n; i++ {
		srv := rdma.NewServer(i, 16<<20, nam.SuperblockBytes)
		agent := NewAgent(srv, handler)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		agents = append(agents, agent)
		go agent.Serve(l)
		t.Cleanup(agent.Close)
	}
	return addrs, agents
}

func TestOneSidedVerbsOverTCP(t *testing.T) {
	addrs, _ := startCluster(t, 2, nil)
	ep := Dial(addrs)
	defer ep.Close()

	p := rdma.MakePtr(1, 128)
	if err := ep.Write(p, []uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 3)
	if err := ep.Read(p, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 10 || dst[2] != 30 {
		t.Fatalf("read %v", dst)
	}
	if old, err := ep.CompareAndSwap(p, 10, 11); err != nil || old != 10 {
		t.Fatalf("CAS old=%d err=%v", old, err)
	}
	if old, err := ep.FetchAdd(p, 9); err != nil || old != 11 {
		t.Fatalf("FAA old=%d err=%v", old, err)
	}
	if err := ep.Read(p, dst[:1]); err != nil || dst[0] != 20 {
		t.Fatalf("after atomics: %d %v", dst[0], err)
	}
}

func TestAllocFreeOverTCP(t *testing.T) {
	addrs, _ := startCluster(t, 1, nil)
	ep := Dial(addrs)
	defer ep.Close()
	ptr, err := ep.Alloc(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Write(ptr, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Free(ptr, 512); err != nil {
		t.Fatal(err)
	}
	ptr2, err := ep.Alloc(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if ptr2 != ptr {
		t.Fatalf("freed block not reused: %v vs %v", ptr2, ptr)
	}
}

func TestReadMultiOverTCP(t *testing.T) {
	addrs, _ := startCluster(t, 3, nil)
	ep := Dial(addrs)
	defer ep.Close()
	var ptrs []rdma.RemotePtr
	for i := 0; i < 6; i++ {
		p := rdma.MakePtr(i%3, uint64(256+i*64))
		ptrs = append(ptrs, p)
		if err := ep.Write(p, []uint64{uint64(i * 100)}); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([][]uint64, 6)
	for i := range dst {
		dst[i] = make([]uint64, 1)
	}
	if err := ep.ReadMulti(ptrs, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i][0] != uint64(i*100) {
			t.Fatalf("batch read %d = %d", i, dst[i][0])
		}
	}
}

func TestRPCAndCatalogOverTCP(t *testing.T) {
	handler := func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		return append([]byte{byte(server)}, req...), rdma.Work{}
	}
	addrs, agents := startCluster(t, 2, handler)
	agents[0].SetCatalog([]byte("catalog-bytes"))
	ep := Dial(addrs)
	defer ep.Close()
	resp, err := ep.Call(1, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != 1 || string(resp[1:]) != "hi" {
		t.Fatalf("rpc response %q", resp)
	}
	cat, err := ep.Catalog(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(cat) != "catalog-bytes" {
		t.Fatalf("catalog %q", cat)
	}
	if _, err := ep.Catalog(1); err == nil {
		t.Fatal("catalog from server without one succeeded")
	}
}

func TestErrorsSurfaceAndConnectionSurvives(t *testing.T) {
	addrs, _ := startCluster(t, 1, nil)
	ep := Dial(addrs)
	defer ep.Close()
	// Call without a handler yields a remote error...
	if _, err := ep.Call(0, []byte("x")); err == nil {
		t.Fatal("expected remote error")
	}
	// ...but the connection keeps working.
	if err := ep.Write(rdma.MakePtr(0, 64), []uint64{5}); err != nil {
		t.Fatal(err)
	}
}

func TestDialErrorOnBadServer(t *testing.T) {
	ep := Dial([]string{"127.0.0.1:1"}) // almost surely nothing listening
	defer ep.Close()
	if err := ep.Read(rdma.MakePtr(0, 0), make([]uint64, 1)); err == nil {
		t.Fatal("read from dead server succeeded")
	}
}

// TestBTreeOverTCP runs the full one-sided B-link protocol across TCP
// agents, concurrently.
func TestBTreeOverTCP(t *testing.T) {
	addrs, _ := startCluster(t, 3, nil)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)

	boot := Dial(addrs)
	defer boot.Close()
	tr := btree.New(l, &btree.EndpointMem{Ep: boot, Place: btree.RoundRobin(3, 0)}, root)
	if _, err := tr.Build(rdma.NopEnv{}, btree.BuildConfig{HeadEvery: 4}, 2000,
		func(i int) (uint64, uint64) { return uint64(i * 2), uint64(i) }); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := Dial(addrs)
			defer ep.Close()
			tr := btree.New(l, &btree.EndpointMem{Ep: ep, Place: btree.RoundRobin(3, c)}, root)
			for i := 0; i < 300; i++ {
				k := uint64(i*2*clients+c*2) + 1
				if _, err := tr.Insert(rdma.NopEnv{}, k, k); err != nil {
					t.Error(err)
					return
				}
				if vals, _, err := tr.Lookup(rdma.NopEnv{}, k); err != nil || len(vals) != 1 {
					t.Errorf("lookup %d: %v %v", k, vals, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	live, err := tr.CheckInvariants(rdma.NopEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if live != 2000+clients*300 {
		t.Fatalf("live = %d; want %d", live, 2000+clients*300)
	}
	// Range scan with prefetch over TCP.
	count := 0
	st, err := tr.Scan(rdma.NopEnv{}, 0, 1000, func(uint64, uint64) bool { count++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || st.Prefetches == 0 {
		t.Fatalf("scan count=%d prefetches=%d", count, st.Prefetches)
	}
}

// TestAgentCloseFailsInFlightAndRecovers kills a memory server under the
// client and verifies (a) verbs to the dead server fail cleanly, (b) other
// servers keep working, (c) a restarted server is reachable again through
// the same endpoint (it re-dials broken connections).
func TestAgentCloseFailsInFlightAndRecovers(t *testing.T) {
	srv0 := rdma.NewServer(0, 1<<20, nam.SuperblockBytes)
	agent0 := NewAgent(srv0, nil)
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0 := l0.Addr().String()
	go agent0.Serve(l0)

	srv1 := rdma.NewServer(1, 1<<20, nam.SuperblockBytes)
	agent1 := NewAgent(srv1, nil)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go agent1.Serve(l1)
	defer agent1.Close()

	ep := Dial([]string{addr0, l1.Addr().String()})
	defer ep.Close()
	if err := ep.Write(rdma.MakePtr(0, 64), []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Write(rdma.MakePtr(1, 64), []uint64{2}); err != nil {
		t.Fatal(err)
	}

	// Kill server 0.
	agent0.Close()
	if err := ep.Write(rdma.MakePtr(0, 64), []uint64{3}); err == nil {
		t.Fatal("write to dead server succeeded")
	}
	// Server 1 still works on the same endpoint.
	dst := make([]uint64, 1)
	if err := ep.Read(rdma.MakePtr(1, 64), dst); err != nil || dst[0] != 2 {
		t.Fatalf("healthy server affected: %v %v", dst, err)
	}

	// Restart server 0 on the same address (a fresh agent over the same
	// region, as a recovered process would).
	l0b, err := net.Listen("tcp", addr0)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr0, err)
	}
	agent0b := NewAgent(srv0, nil)
	go agent0b.Serve(l0b)
	defer agent0b.Close()
	if err := ep.Write(rdma.MakePtr(0, 64), []uint64{4}); err != nil {
		t.Fatalf("endpoint did not recover after server restart: %v", err)
	}
	if err := ep.Read(rdma.MakePtr(0, 64), dst); err != nil || dst[0] != 4 {
		t.Fatalf("read after recovery: %v %v", dst, err)
	}
}

// TestConcurrentEndpointsSeparateConnections checks that concurrent client
// threads (each with its own endpoint, as the contract requires) do not
// interfere.
func TestConcurrentEndpointsSeparateConnections(t *testing.T) {
	addrs, _ := startCluster(t, 2, nil)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := Dial(addrs)
			defer ep.Close()
			base := uint64(1024 + c*512)
			for i := 0; i < 200; i++ {
				p := rdma.MakePtr(c%2, base)
				if _, err := ep.FetchAdd(p, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAsyncPostPollOverTCP pins the native post/poll surface: a mixed batch
// across two servers completes in posting order with blocking-identical
// results, and posted call RPCs interleave with one-sided verbs.
func TestAsyncPostPollOverTCP(t *testing.T) {
	addrs, _ := startCluster(t, 2, func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		return append([]byte{byte(server)}, req...), rdma.Work{}
	})
	ep := Dial(addrs)
	defer ep.Close()

	p0, p1 := rdma.MakePtr(0, 256), rdma.MakePtr(1, 256)
	if err := ep.Write(p0, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Write(p1, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}

	d0, d1 := make([]uint64, 2), make([]uint64, 2)
	ep.PostRead(p0, d0)
	ep.PostRead(p1, d1)
	ep.PostCAS(p0, 1, 9)
	ep.PostFetchAdd(p1, 10)
	ep.PostCall(1, []byte{7})
	ep.PostRead(rdma.NullPtr, nil) // error completion, no wire traffic
	ep.Flush()
	comps := ep.Poll(nil)
	if len(comps) != 6 {
		t.Fatalf("got %d completions, want 6", len(comps))
	}
	for i, c := range comps {
		if c.Token != rdma.Token(i) {
			t.Fatalf("completion %d out of posting order: token %d", i, c.Token)
		}
	}
	if d0[0] != 1 || d0[1] != 2 || d1[0] != 3 || d1[1] != 4 {
		t.Fatalf("posted reads: %v %v", d0, d1)
	}
	if comps[2].Err != nil || comps[2].Val != 1 {
		t.Fatalf("posted CAS: %+v", comps[2])
	}
	if comps[3].Err != nil || comps[3].Val != 3 {
		t.Fatalf("posted FAA: %+v", comps[3])
	}
	if comps[4].Err != nil || len(comps[4].Resp) != 2 || comps[4].Resp[0] != 1 || comps[4].Resp[1] != 7 {
		t.Fatalf("posted call: %+v", comps[4])
	}
	if comps[5].Err == nil {
		t.Fatal("null-pointer post completed without error")
	}

	// Effects are visible and the endpoint still works serially afterwards.
	after := make([]uint64, 1)
	if err := ep.Read(p0, after); err != nil || after[0] != 9 {
		t.Fatalf("after batch: %d %v", after[0], err)
	}
	if err := ep.Read(p1, after); err != nil || after[0] != 13 {
		t.Fatalf("after batch: %d %v", after[0], err)
	}
}

// TestAsyncConnFailureFailsBatchRemainder pins per-server failure isolation:
// killing one server mid-batch fails that server's completions but leaves the
// other server's verbs intact, and the endpoint redials afterwards.
func TestAsyncConnFailureFailsBatchRemainder(t *testing.T) {
	addrs, agents := startCluster(t, 2, nil)
	ep := Dial(addrs)
	defer ep.Close()

	p0, p1 := rdma.MakePtr(0, 256), rdma.MakePtr(1, 256)
	if err := ep.Write(p0, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Write(p1, []uint64{6}); err != nil {
		t.Fatal(err)
	}
	agents[1].Close()

	d0, d1a, d1b := make([]uint64, 1), make([]uint64, 1), make([]uint64, 1)
	ep.PostRead(p0, d0)
	ep.PostRead(p1, d1a)
	ep.PostRead(p1, d1b)
	comps := ep.Poll(nil)
	if comps[0].Err != nil || d0[0] != 5 {
		t.Fatalf("healthy server's verb failed: %+v", comps[0])
	}
	if comps[1].Err == nil || comps[2].Err == nil {
		t.Fatalf("dead server's verbs completed: %+v %+v", comps[1], comps[2])
	}
	// Next batch starts clean: the healthy server still answers.
	ep.PostRead(p0, d0)
	comps = ep.Poll(comps[:0])
	if comps[0].Err != nil {
		t.Fatalf("batch after failure: %+v", comps[0])
	}
}
