package rdma

// Endpoint is the client-side verbs interface of one compute thread: a set
// of reliable connections (queue pairs) to every memory server in the NAM
// cluster. All index access protocols in this repository are written against
// this interface and run unchanged on all transports.
//
// One-sided verbs (Read, Write, CompareAndSwap, FetchAdd) access remote
// memory without involving the remote CPU. The two-sided verb pair
// SEND/RECEIVE is exposed as Call: a request message delivered to the target
// server's shared receive queue, processed by a handler on the server's CPU,
// answered with a response message.
//
// Alloc and Free implement the RDMA_ALLOC/free used by the one-sided split
// protocol (Listing 4) and the epoch garbage collector.
//
// An Endpoint is owned by a single client; it must not be used from multiple
// goroutines concurrently. Distinct Endpoints may be used concurrently.
type Endpoint interface {
	// Read copies len(dst) words (8*len(dst) bytes) from remote memory at p.
	Read(p RemotePtr, dst []uint64) error
	// ReadMulti issues one READ per pointer as a selectively signalled
	// batch: all reads are posted at once and only the last is waited for,
	// masking latency (the Section 4.3 head-node prefetch relies on this).
	ReadMulti(ps []RemotePtr, dst [][]uint64) error
	// Write copies src to remote memory at p.
	Write(p RemotePtr, src []uint64) error
	// CompareAndSwap atomically compares the remote 8-byte word at p with
	// old and, if equal, replaces it with new. It returns the value observed
	// before the operation (ibverbs semantics): the swap succeeded iff the
	// returned value == old.
	CompareAndSwap(p RemotePtr, old, new uint64) (uint64, error)
	// FetchAdd atomically adds delta to the remote word at p and returns the
	// prior value.
	FetchAdd(p RemotePtr, delta uint64) (uint64, error)
	// Alloc allocates n bytes in the region of the given server.
	Alloc(server int, n int) (RemotePtr, error)
	// Free returns the n-byte block at p to its server's allocator.
	Free(p RemotePtr, n int) error
	// Call sends req to the given server's shared receive queue and blocks
	// until the response arrives.
	Call(server int, req []byte) ([]byte, error)
	// NumServers returns the number of memory servers in the cluster.
	NumServers() int
}

// Work reports the server-side effort of one RPC so the simulated transport
// can charge handler CPU time. Transports without a performance model ignore
// it.
type Work struct {
	// PagesTouched is the number of index pages the handler visited.
	PagesTouched int
}

// Env abstracts the execution environment of protocol code that runs on a
// server CPU, so the same implementation runs on real threads (direct,
// tcpnet) and on simulated virtual time (simnet).
type Env interface {
	// Charge accounts ns nanoseconds of CPU work. On simulated transports
	// this advances virtual time while occupying the handler's core; on real
	// transports it is a no-op.
	Charge(ns int64)
	// Pause is a spin-wait backoff hint, called inside lock spin loops. On
	// real transports it yields the processor; on simulated transports it
	// advances virtual time so that the lock holder can make progress.
	Pause()
}

// Handler processes one RPC on a memory server. Handlers run concurrently
// (one per handler core / SRQ worker) and must synchronize through the
// server's Region like any other accessor.
type Handler func(env Env, server int, req []byte) (resp []byte, w Work)

// Server bundles the registered memory region and allocator of one memory
// server. Transports expose it for index bulk-loading (an untimed setup
// path) and for server-local index structures (the coarse-grained design's
// per-server trees).
type Server struct {
	ID     int
	Region *Region
	Alloc  *Allocator
}

// NewServer creates a memory server with a region of the given byte size.
// The first reservedBytes bytes are left to the caller (e.g. for superblock
// metadata); the allocator manages the rest.
func NewServer(id, sizeBytes, reservedBytes int) *Server {
	r := NewRegion(sizeBytes)
	return &Server{
		ID:     id,
		Region: r,
		Alloc:  NewAllocator(uint64(reservedBytes), r.Size()),
	}
}

// Fabric is the server-side view of a transport: the set of memory servers
// and the RPC handler dispatched on them.
type Fabric interface {
	NumServers() int
	Server(i int) *Server
	// SetHandler installs the RPC handler executed for Call requests on
	// every server. It must be called before any Call is issued.
	SetHandler(h Handler)
}

// NopEnv is an Env that performs no accounting; used by real-time transports
// and setup paths.
type NopEnv struct{}

// Charge implements Env.
func (NopEnv) Charge(int64) {}

// Pause implements Env.
func (NopEnv) Pause() {}
