// Package sim implements a small deterministic discrete-event simulation
// kernel with cooperative processes, counted resources and FIFO queues.
//
// The kernel is the substrate for the simulated RDMA fabric
// (internal/rdma/simnet): simulated compute clients and memory-server RPC
// handlers run as processes, NICs and CPU cores are resources, and virtual
// time advances only when every runnable process has blocked.
//
// Processes are real goroutines, but exactly one process executes at any
// moment: the scheduler hands control to a process and waits until it parks
// again (on Sleep, Resource.Acquire, Queue.Get, ...). This gives sequential
// consistency for all data touched by processes and makes runs fully
// deterministic: events at equal virtual times fire in FIFO schedule order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in nanoseconds.
type Time = int64

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

type resumeSignal int

const (
	resumeRun resumeSignal = iota
	resumeStop
)

// errStopped is panicked inside process goroutines when the simulation shuts
// down; the process wrapper recovers it and unwinds cleanly.
type stoppedError struct{}

func (stoppedError) Error() string { return "sim: simulation stopped" }

// Sim is a discrete-event simulation instance. Create with New. A Sim must
// only be driven from a single goroutine (the one calling Run/RunUntil), and
// process code must only interact with the Sim through its own *Proc.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventHeap
	yield  chan struct{} // signalled by a process when it parks or exits
	procs  map[*Proc]struct{}
	closed bool
}

// New returns an empty simulation at virtual time zero.
func New() *Sim {
	return &Sim{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

func (s *Sim) schedule(at Time, p *Proc, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, proc: p, fn: fn})
}

// At schedules fn to run at virtual time t (or now, if t is in the past).
// fn runs in scheduler context and must not block.
func (s *Sim) At(t Time, fn func()) { s.schedule(t, nil, fn) }

// Proc is the handle a process uses to interact with the simulation. All
// methods must be called from the process's own goroutine.
type Proc struct {
	s      *Sim
	name   string
	resume chan resumeSignal
	done   bool
}

// Spawn starts a new process executing fn. The process becomes runnable at
// the current virtual time. Spawn may be called before Run or from within
// another process.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	if s.closed {
		panic("sim: Spawn after Shutdown")
	}
	p := &Proc{s: s, name: name, resume: make(chan resumeSignal)}
	s.procs[p] = struct{}{}
	go func() {
		defer func() {
			p.done = true
			delete(s.procs, p)
			r := recover()
			if _, ok := r.(stoppedError); ok || r == nil {
				s.yield <- struct{}{}
				return
			}
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}()
		if sig := <-p.resume; sig == resumeStop {
			panic(stoppedError{})
		}
		fn(p)
	}()
	s.schedule(s.now, p, nil)
	return p
}

// runProc transfers control to p and waits until it parks or exits.
func (s *Sim) runProc(p *Proc) {
	p.resume <- resumeRun
	<-s.yield
}

// step executes the earliest pending event. It reports whether an event was
// executed.
func (s *Sim) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(event)
	s.now = ev.at
	switch {
	case ev.proc != nil:
		if !ev.proc.done {
			s.runProc(ev.proc)
		}
	case ev.fn != nil:
		ev.fn()
	}
	return true
}

// Run executes events until the event queue is empty.
func (s *Sim) Run() {
	for s.step() {
	}
}

// RunUntil executes events with time <= t. The clock is left at min(t, time
// of last event executed); if events remain they stay queued.
func (s *Sim) RunUntil(t Time) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// Shutdown terminates every parked process and marks the simulation closed.
// It must be called from scheduler context (not from inside a process).
// Blocking primitives inside processes unwind via an internal panic that the
// process wrapper recovers.
func (s *Sim) Shutdown() {
	s.closed = true
	for len(s.procs) > 0 {
		var p *Proc
		for q := range s.procs {
			p = q
			break
		}
		delete(s.procs, p)
		p.resume <- resumeStop
		<-s.yield
	}
	s.queue = s.queue[:0]
}

// park returns control to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.s.yield <- struct{}{}
	if sig := <-p.resume; sig == resumeStop {
		panic(stoppedError{})
	}
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.s }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sleep suspends the process for d nanoseconds of virtual time. Negative
// durations are treated as zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.s.schedule(p.s.now+d, p, nil)
	p.park()
}

// Yield suspends the process until the scheduler has drained all events at
// the current instant, preserving FIFO order with respect to other runnable
// processes.
func (p *Proc) Yield() { p.Sleep(0) }

// Resource is a counted resource (semaphore) with FIFO granting, e.g. a pool
// of CPU cores or a NIC processing unit. It tracks aggregate busy time so
// runs can report utilization.
type Resource struct {
	s        *Sim
	capacity int
	inUse    int
	waiters  []*Proc
	// busy accumulates unit-nanoseconds of held capacity; lastChange is the
	// last time inUse changed.
	busy       Time
	lastChange Time
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(s *Sim, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{s: s, capacity: capacity}
}

// account folds the elapsed busy time up to now into the running total.
func (r *Resource) account() {
	now := r.s.now
	r.busy += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Acquire obtains one unit, blocking in virtual time until available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park() // resumed by Release via scheduled wake
	// Unit was transferred to us by Release; inUse already accounts for it.
}

// TryAcquire obtains one unit if immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account()
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	if len(r.waiters) > 0 {
		// Transfer the unit directly to the oldest waiter; wake it at the
		// current instant in FIFO order.
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.s.schedule(r.s.now, w, nil)
		return
	}
	r.account()
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the resource capacity.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyTime returns the accumulated unit-nanoseconds of held capacity up to
// the current virtual time.
func (r *Resource) BusyTime() Time {
	return r.busy + Time(r.inUse)*(r.s.now-r.lastChange)
}

// Utilization returns BusyTime divided by capacity over the window
// [since, now], in [0, 1+]. Callers snapshot BusyTime at the window start.
func (r *Resource) Utilization(busyAtStart, since Time) float64 {
	window := r.s.now - since
	if window <= 0 {
		return 0
	}
	return float64(r.BusyTime()-busyAtStart) / float64(window) / float64(r.capacity)
}

// Use acquires the resource, sleeps for the given service time, and
// releases. It models a visit to a FIFO service station.
func (r *Resource) Use(p *Proc, service Time) {
	r.Acquire(p)
	p.Sleep(service)
	r.Release()
}

// Queue is an unbounded FIFO message queue (a simpy-style store). Put never
// blocks; Get blocks in virtual time until an item is available.
type Queue struct {
	s       *Sim
	items   []any
	getters []*Proc
	// maxLen tracks the high-water mark, for instrumentation.
	maxLen int
}

// NewQueue creates an empty queue.
func NewQueue(s *Sim) *Queue { return &Queue{s: s} }

// Put appends v and wakes the oldest blocked getter, if any. It may be
// called from process or scheduler context.
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.s.schedule(q.s.now, g, nil)
	}
}

// Get removes and returns the oldest item, blocking in virtual time while
// the queue is empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// Len returns the current queue length.
func (q *Queue) Len() int { return len(q.items) }

// MaxLen returns the high-water mark of the queue length.
func (q *Queue) MaxLen() int { return q.maxLen }

// Event is a one-shot level-triggered signal processes can wait on.
type Event struct {
	s       *Sim
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(s *Sim) *Event { return &Event{s: s} }

// Fire marks the event fired and wakes all waiters. Firing twice is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, w := range e.waiters {
		e.s.schedule(e.s.now, w, nil)
	}
	e.waiters = nil
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Wait blocks the process in virtual time until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.park()
}
