package sim

import (
	"testing"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var at1, at2 Time
	s.Spawn("p", func(p *Proc) {
		p.Sleep(100)
		at1 = p.Now()
		p.Sleep(250)
		at2 = p.Now()
	})
	s.Run()
	if at1 != 100 || at2 != 350 {
		t.Fatalf("got times %d, %d; want 100, 350", at1, at2)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	s := New()
	var at Time = -1
	s.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		at = p.Now()
	})
	s.Run()
	if at != 0 {
		t.Fatalf("time after negative sleep = %d; want 0", at)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		s.Spawn("a", func(p *Proc) {
			p.Sleep(10)
			order = append(order, "a10")
			p.Sleep(20)
			order = append(order, "a30")
		})
		s.Spawn("b", func(p *Proc) {
			p.Sleep(20)
			order = append(order, "b20")
			p.Sleep(20)
			order = append(order, "b40")
		})
		s.Run()
		return order
	}
	want := []string{"a10", "b20", "a30", "b40"}
	for trial := 0; trial < 10; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v; want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v; want %v", trial, got, want)
			}
		}
	}
}

func TestEqualTimeFIFOOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(100)
			order = append(order, i)
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v; want ascending spawn order", order)
		}
	}
}

func TestAtCallback(t *testing.T) {
	s := New()
	fired := Time(-1)
	s.At(500, func() { fired = s.Now() })
	s.Run()
	if fired != 500 {
		t.Fatalf("callback at %d; want 500", fired)
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	s := New()
	count := 0
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			count++
		}
	})
	s.RunUntil(55)
	if count != 5 {
		t.Fatalf("count after RunUntil(55) = %d; want 5", count)
	}
	if s.Now() != 55 {
		t.Fatalf("Now() = %d; want 55", s.Now())
	}
	s.Shutdown()
}

func TestResourceSerializesUse(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Spawn("p", func(p *Proc) {
			r.Use(p, 100)
			ends = append(ends, p.Now())
		})
	}
	s.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v; want %v", ends, want)
		}
	}
}

func TestResourceCapacityTwoRunsPairsConcurrently(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		s.Spawn("p", func(p *Proc) {
			r.Use(p, 100)
			ends = append(ends, p.Now())
		})
	}
	s.Run()
	want := []Time{100, 100, 200, 200}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v; want %v", ends, want)
		}
	}
}

func TestResourceFIFOGranting(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(Time(i)) // arrive in index order
			r.Acquire(p)
			p.Sleep(50)
			order = append(order, i)
			r.Release()
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v; want FIFO", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on full resource")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New()
	r := NewResource(s, 1)
	r.Release()
}

func TestQueueBlockingGet(t *testing.T) {
	s := New()
	q := NewQueue(s)
	var got any
	var at Time
	s.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(300)
		q.Put(42)
	})
	s.Run()
	if got != 42 || at != 300 {
		t.Fatalf("got %v at %d; want 42 at 300", got, at)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New()
	q := NewQueue(s)
	q.Put(1)
	q.Put(2)
	q.Put(3)
	var got []int
	s.Spawn("c", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	s.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v; want [1 2 3]", got)
		}
	}
	if q.MaxLen() != 3 {
		t.Fatalf("MaxLen = %d; want 3", q.MaxLen())
	}
}

func TestQueueMultipleGetters(t *testing.T) {
	s := New()
	q := NewQueue(s)
	var got []int
	for i := 0; i < 3; i++ {
		s.Spawn("c", func(p *Proc) {
			got = append(got, q.Get(p).(int))
		})
	}
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Put(i)
		}
	})
	s.Run()
	if len(got) != 3 {
		t.Fatalf("got %v; want 3 items", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v; want FIFO delivery [1 2 3]", got)
		}
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	s := New()
	e := NewEvent(s)
	woke := 0
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) {
			e.Wait(p)
			woke++
		})
	}
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(100)
		e.Fire()
		e.Fire() // idempotent
	})
	s.Run()
	if woke != 4 {
		t.Fatalf("woke = %d; want 4", woke)
	}
	if !e.Fired() {
		t.Fatal("event not marked fired")
	}
	// Waiting on a fired event returns immediately.
	returned := false
	s.Spawn("late", func(p *Proc) {
		e.Wait(p)
		returned = true
	})
	s.Run()
	if !returned {
		t.Fatal("late waiter did not return")
	}
}

func TestShutdownUnwindsParkedProcesses(t *testing.T) {
	s := New()
	q := NewQueue(s)
	started := 0
	for i := 0; i < 8; i++ {
		s.Spawn("blocked", func(p *Proc) {
			started++
			q.Get(p) // blocks forever
			t.Error("process resumed past Get after shutdown")
		})
	}
	s.RunUntil(10)
	if started != 8 {
		t.Fatalf("started = %d; want 8", started)
	}
	s.Shutdown()
	// All goroutines must have exited; a second shutdown is a no-op.
	s.Shutdown()
}

func TestSpawnFromWithinProcess(t *testing.T) {
	s := New()
	var childAt Time = -1
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(100)
		p.Sim().Spawn("child", func(c *Proc) {
			c.Sleep(50)
			childAt = c.Now()
		})
		p.Sleep(500)
	})
	s.Run()
	if childAt != 150 {
		t.Fatalf("child finished at %d; want 150", childAt)
	}
}

func TestYieldPreservesFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Yield()
			order = append(order, i)
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v; want FIFO", order)
		}
	}
}

func BenchmarkSleepWakeup(b *testing.B) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	s.Run()
}

func BenchmarkResourceHandoff(b *testing.B) {
	s := New()
	r := NewResource(s, 1)
	for w := 0; w < 4; w++ {
		s.Spawn("p", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Use(p, 1)
			}
		})
	}
	b.ResetTimer()
	s.Run()
}

func TestResourceBusyTimeAndUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	for i := 0; i < 2; i++ {
		s.Spawn("p", func(p *Proc) {
			r.Use(p, 100)
		})
	}
	s.Run()
	if got := r.BusyTime(); got != 200 {
		t.Fatalf("BusyTime = %d; want 200", got)
	}
	// Both units busy for the whole [0,100] window: utilization 1.
	s2 := New()
	r2 := NewResource(s2, 1)
	s2.Spawn("p", func(p *Proc) {
		r2.Use(p, 50)
		p.Sleep(50)
	})
	s2.Run()
	if u := r2.Utilization(0, 0); u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %f; want 0.5", u)
	}
}
