// Package stats provides the metric primitives of the benchmark harness:
// throughput counters, log-bucketed latency histograms with percentile
// estimation, and per-server byte counters for the network-utilization
// experiments (Figure 9).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a log-bucketed latency histogram: values are binned into
// buckets of geometrically increasing width (each power of two split into 8
// sub-buckets, ~9% relative error). The zero value is ready to use. It is
// safe for concurrent Record calls.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

const (
	subBuckets = 8
	numBuckets = 64 * subBuckets
)

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	// Sub-bucket within [2^exp, 2^(exp+1)).
	sub := int((uint64(v) - 1<<uint(exp)) >> uint(exp-3))
	idx := exp*subBuckets + sub
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx / subBuckets
	sub := idx % subBuckets
	return int64(1)<<uint(exp) + int64(sub)<<uint(exp-3)
}

// Record adds one observation (e.g. latency in nanoseconds).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	// Max update: CAS only ever replaces the current max with a larger value,
	// so the observed max is monotone and every failed CAS means it grew —
	// the v <= cur early exit guarantees termination. Under heavy contention
	// the loop still burns cycles on cache-line ping-pong, so after a few
	// failed attempts yield the processor instead of spinning hot.
	for tries := 0; ; tries++ {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
		if tries >= maxCASSpins {
			runtime.Gosched()
		}
	}
}

// maxCASSpins bounds the hot-spin phase of Record's max update.
const maxCASSpins = 4

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Percentile returns an estimate of the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) int64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(c)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max.Load()
}

// Summary formats count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

// Merge folds all of other's observations into h. Concurrent Records on
// either histogram during the merge may be attributed to either side but are
// never lost. Aggregating per-worker histograms through Merge keeps the hot
// Record path free of cross-worker atomics contention.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	m := other.max.Load()
	for tries := 0; ; tries++ {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			break
		}
		if tries >= maxCASSpins {
			runtime.Gosched()
		}
	}
}

// Snapshot is an immutable, plain-value copy of a histogram, safe to pass
// between goroutines, aggregate with Add, and query without touching the
// live atomics.
type Snapshot struct {
	Buckets [numBuckets]int64
	N       int64
	Sum     int64
	MaxV    int64
}

// Snapshot captures the current state of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.N = h.count.Load()
	s.Sum = h.sum.Load()
	s.MaxV = h.max.Load()
	return s
}

// Add returns the aggregate of two snapshots.
func (s Snapshot) Add(other Snapshot) Snapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] += other.Buckets[i]
	}
	out.N += other.N
	out.Sum += other.Sum
	if other.MaxV > out.MaxV {
		out.MaxV = other.MaxV
	}
	return out
}

// Count returns the number of observations in the snapshot.
func (s Snapshot) Count() int64 { return s.N }

// Max returns the largest observation in the snapshot.
func (s Snapshot) Max() int64 { return s.MaxV }

// Mean returns the snapshot's mean observation, or 0 if empty.
func (s Snapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Percentile returns an estimate of the p-th percentile (0 < p <= 100).
func (s Snapshot) Percentile(p float64) int64 {
	if s.N == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(s.N)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return s.MaxV
}

// Summary formats count/mean/p50/p95/p99/max on one line.
func (s Snapshot) Summary() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d",
		s.N, s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.MaxV)
}

// Counter is an atomic event counter.
type Counter struct {
	v atomic.Int64
}

// Add increments by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments by 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// PerServer tracks a counter per memory server (e.g. NIC bytes).
type PerServer struct {
	vals []atomic.Int64
}

// NewPerServer creates counters for n servers.
func NewPerServer(n int) *PerServer { return &PerServer{vals: make([]atomic.Int64, n)} }

// Add adds v to server s's counter.
func (p *PerServer) Add(s int, v int64) { p.vals[s].Add(v) }

// Get returns server s's counter.
func (p *PerServer) Get(s int) int64 { return p.vals[s].Load() }

// Total returns the sum over all servers.
func (p *PerServer) Total() int64 {
	var t int64
	for i := range p.vals {
		t += p.vals[i].Load()
	}
	return t
}

// Snapshot returns all per-server values.
func (p *PerServer) Snapshot() []int64 {
	out := make([]int64, len(p.vals))
	for i := range p.vals {
		out[i] = p.vals[i].Load()
	}
	return out
}

// Series is an ordered set of (x, y) points — one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders series as an aligned text table with one row per distinct x
// value and one column per series — the format the benchmark harness prints
// for every reproduced figure.
func Table(xLabel, yLabel string, series ...*Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%22s", s.Name)
	}
	fmt.Fprintf(&b, "    (%s)\n", yLabel)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14s", FormatQty(x))
		for _, s := range series {
			y, ok := lookup(s, x)
			if !ok {
				fmt.Fprintf(&b, "%22s", "-")
			} else {
				fmt.Fprintf(&b, "%22s", FormatQty(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s *Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// FormatQty renders a quantity with K/M/G suffixes, matching the axis labels
// of the paper's plots.
func FormatQty(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
