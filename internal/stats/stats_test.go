package stats

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m < 50 || m > 51 {
		t.Fatalf("Mean = %f", m)
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d", h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %d", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90 || p99 > 100 {
		t.Fatalf("p99 = %d", p99)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	var vals []int64
	for i := 0; i < 50000; i++ {
		v := int64(rng.ExpFloat64() * 100000)
		vals = append(vals, v)
		h.Record(v)
	}
	// Compare p95 against the exact value within bucket resolution.
	exact := exactPercentile(vals, 95)
	got := h.Percentile(95)
	lo, hi := float64(exact)*0.8, float64(exact)*1.2
	if float64(got) < lo || float64(got) > hi {
		t.Fatalf("p95 = %d; exact %d (outside 20%%)", got, exact)
	}
}

func exactPercentile(vals []int64, p float64) int64 {
	s := append([]int64(nil), vals...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	idx := int(p/100*float64(len(s))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Percentile(50) != 0 {
		t.Fatalf("p50 = %d", h.Percentile(50))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 10000; i++ {
				h.Record(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramMergeThenQuantile(t *testing.T) {
	// Recording a value set split across per-worker histograms and merging
	// must give the same quantiles as recording everything into one.
	rng := rand.New(rand.NewSource(7))
	var whole Histogram
	parts := make([]*Histogram, 4)
	for i := range parts {
		parts[i] = &Histogram{}
	}
	for i := 0; i < 40000; i++ {
		v := int64(rng.ExpFloat64() * 250000)
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged Histogram
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), whole.Count())
	}
	if merged.Max() != whole.Max() {
		t.Fatalf("merged max %d != %d", merged.Max(), whole.Max())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("merged mean %f != %f", merged.Mean(), whole.Mean())
	}
	for _, p := range []float64{1, 50, 95, 99, 99.9} {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("p%g: merged %d != whole %d", p, got, want)
		}
	}
}

func TestSnapshotMatchesLiveHistogram(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 3)
	}
	s := h.Snapshot()
	if s.Count() != h.Count() || s.Max() != h.Max() || s.Mean() != h.Mean() {
		t.Fatalf("snapshot basics diverge: %s vs %s", s.Summary(), h.Summary())
	}
	for _, p := range []float64{10, 50, 99} {
		if s.Percentile(p) != h.Percentile(p) {
			t.Fatalf("p%g: snapshot %d != live %d", p, s.Percentile(p), h.Percentile(p))
		}
	}
	// Aggregating two snapshots equals merging the histograms.
	var h2 Histogram
	for i := int64(1); i <= 500; i++ {
		h2.Record(i * 7)
	}
	sum := s.Add(h2.Snapshot())
	var m Histogram
	m.Merge(&h)
	m.Merge(&h2)
	if sum.Count() != m.Count() || sum.Percentile(50) != m.Percentile(50) || sum.Max() != m.Max() {
		t.Fatalf("snapshot Add diverges from Merge: %s vs %s", sum.Summary(), m.Summary())
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	for _, p := range []float64{0.001, 1, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty histogram p%g = %d, want 0", p, got)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h.Summary())
	}
	s := h.Snapshot()
	for _, p := range []float64{1, 50, 99.9} {
		if got := s.Percentile(p); got != 0 {
			t.Fatalf("empty snapshot p%g = %d, want 0", p, got)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("empty snapshot mean = %f", s.Mean())
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 1000, 1 << 40} {
		var h Histogram
		h.Record(v)
		low := bucketLow(bucketIndex(v))
		// Every quantile of a single-sample histogram is that sample's
		// bucket floor — including the extremes, where the rank rounds to 1.
		for _, p := range []float64{0.001, 1, 50, 99, 99.9, 100} {
			if got := h.Percentile(p); got != low {
				t.Fatalf("single sample %d: p%g = %d, want bucket low %d", v, p, got, low)
			}
		}
		if h.Sum() != v || h.Max() != v || h.Count() != 1 {
			t.Fatalf("single sample %d: %s", v, h.Summary())
		}
		s := h.Snapshot()
		if got := s.Percentile(99.9); got != low {
			t.Fatalf("single-sample snapshot p99.9 = %d, want %d", got, low)
		}
	}
}

func TestSnapshotMergedQuantiles(t *testing.T) {
	// Adding snapshots — including empty and single-sample ones — must agree
	// with one histogram holding all observations, at every quantile the
	// OpenMetrics exporter emits.
	var whole, a, b Histogram
	for i := int64(1); i <= 3000; i++ {
		whole.Record(i)
		if i%2 == 0 {
			a.Record(i)
		} else {
			b.Record(i)
		}
	}
	var single Histogram
	single.Record(5000)
	whole.Record(5000)

	merged := Snapshot{}.Add(a.Snapshot()).Add(b.Snapshot()).Add(single.Snapshot()).Add(Snapshot{})
	if merged.Count() != whole.Count() || merged.Sum != whole.Sum() || merged.Max() != whole.Max() {
		t.Fatalf("merged snapshot basics diverge: %s vs %s", merged.Summary(), whole.Summary())
	}
	for _, p := range []float64{0.5, 50, 99, 99.9} {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("p%g: merged %d != whole %d", p, got, want)
		}
	}
}

func TestSnapshotWhileRecording(t *testing.T) {
	// Snapshots taken while another goroutine records must be internally
	// sane (no negative counts, quantiles within the observed range) — this
	// is the -race-checked path of the live /metrics exporter.
	var h Histogram
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= 50000; i++ {
			h.Record(i % 1000)
		}
	}()
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		if s.N < 0 || s.Sum < 0 {
			t.Errorf("snapshot went negative: n=%d sum=%d", s.N, s.Sum)
		}
		if p := s.Percentile(99.9); p < 0 || p > 1024 {
			t.Errorf("mid-record p99.9 = %d outside observed range", p)
		}
	}
	<-done
}

func TestHistogramConcurrentRecordStress(t *testing.T) {
	// Hammer Record from many goroutines with strictly increasing values per
	// goroutine so the max CAS loop sees constant contention; the run must
	// terminate promptly (no livelock) and lose no observations.
	var h Histogram
	const goroutines = 16
	const per = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Record(i*goroutines + int64(g))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
	if want := int64(per-1)*goroutines + goroutines - 1; h.Max() != want {
		t.Fatalf("max = %d, want %d", h.Max(), want)
	}
}

func TestBucketMonotoneProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLowWithinBucketProperty(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := bucketIndex(v)
		low := bucketLow(idx)
		// bucketLow must not exceed the value it represents.
		return low <= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndPerServer(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
	ps := NewPerServer(3)
	ps.Add(0, 10)
	ps.Add(2, 20)
	if ps.Total() != 30 || ps.Get(2) != 20 || ps.Get(1) != 0 {
		t.Fatalf("per-server: %v", ps.Snapshot())
	}
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Name: "fine"}
	a.Append(20, 1e6)
	a.Append(40, 2e6)
	b := &Series{Name: "coarse"}
	b.Append(20, 1.5e6)
	out := Table("clients", "lookups/s", a, b)
	if !strings.Contains(out, "fine") || !strings.Contains(out, "coarse") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "1.00M") || !strings.Contains(out, "1.50M") {
		t.Fatalf("table missing values:\n%s", out)
	}
	// Missing point renders as '-'.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing point not rendered:\n%s", out)
	}
}

func TestFormatQty(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		1500:    "1.5K",
		2500000: "2.50M",
		3e9:     "3.00G",
	}
	for v, want := range cases {
		if got := FormatQty(v); got != want {
			t.Fatalf("FormatQty(%v) = %q; want %q", v, got, want)
		}
	}
}
