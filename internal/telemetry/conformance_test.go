package telemetry_test

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
	"github.com/namdb/rdmatree/internal/telemetry"
	"github.com/namdb/rdmatree/internal/workload"
)

// driveIndex runs a fixed mixed script against idx and returns a transcript
// of every result, so two runs can be compared byte for byte.
func driveIndex(t *testing.T, idx core.Index) string {
	t.Helper()
	var b strings.Builder
	for k := uint64(0); k < 400; k += 7 {
		vals, err := idx.Lookup(k)
		fmt.Fprintf(&b, "get %d -> %v %v\n", k, vals, err)
	}
	for k := uint64(1000); k < 1050; k++ {
		fmt.Fprintf(&b, "put %d %v\n", k, idx.Insert(k, k*3))
	}
	for k := uint64(1000); k < 1020; k++ {
		ok, err := idx.Delete(k, k*3)
		fmt.Fprintf(&b, "del %d %v %v\n", k, ok, err)
	}
	err := idx.Range(50, 90, func(k, v uint64) bool {
		fmt.Fprintf(&b, "scan %d %d\n", k, v)
		return true
	})
	fmt.Fprintf(&b, "range %v\n", err)
	return b.String()
}

func buildFineDirect(t *testing.T, servers, n, page int) (*direct.Fabric, *nam.Catalog) {
	t.Helper()
	fab := direct.New(servers, 64<<20, nam.SuperblockBytes)
	cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(page)},
		core.BuildSpec{N: n, At: workload.DataItem, HeadEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	return fab, cat
}

// TestConformanceDirect checks that the telemetry decorator is functionally
// invisible on the direct transport: the same operation script produces a
// byte-identical transcript with and without instrumentation.
func TestConformanceDirect(t *testing.T) {
	fab, cat := buildFineDirect(t, 2, 5000, 512)
	plain := driveIndex(t, fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0))

	fab2, cat2 := buildFineDirect(t, 2, 5000, 512)
	rec := telemetry.NewRecorder(2)
	ep := telemetry.Wrap(fab2.Endpoint(), rec, nil)
	instr := driveIndex(t, fine.NewClient(ep, direct.Env{}, cat2, 0))

	if plain != instr {
		t.Fatalf("instrumented run diverged:\nplain:\n%s\ninstrumented:\n%s", plain, instr)
	}
	if rec.VerbOps(telemetry.VerbRead) == 0 {
		t.Fatal("no READs recorded")
	}
	if rec.VerbOps(telemetry.VerbCall) != 0 {
		t.Fatal("fine-grained client issued two-sided CALLs")
	}
	if rec.VerbBytes(telemetry.VerbRead) == 0 {
		t.Fatal("no READ bytes recorded")
	}
}

// TestConformanceTCP repeats the decorator-invisibility check over real TCP
// connections to in-process memory-server agents.
func TestConformanceTCP(t *testing.T) {
	runScript := func(rec *telemetry.Recorder) string {
		var addrs []string
		for i := 0; i < 2; i++ {
			srv := rdma.NewServer(i, 64<<20, nam.SuperblockBytes)
			agent := tcpnet.NewAgent(srv, nil)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, l.Addr().String())
			go agent.Serve(l)
			t.Cleanup(agent.Close)
		}
		setup := tcpnet.Dial(addrs)
		cat, err := fine.Build(setup, fine.Options{Layout: layout.New(1024)},
			core.BuildSpec{N: 2000, At: workload.DataItem, HeadEvery: 16})
		setup.Close()
		if err != nil {
			t.Fatal(err)
		}
		tep := tcpnet.Dial(addrs)
		t.Cleanup(tep.Close)
		var ep rdma.Endpoint = tep
		if rec != nil {
			ep = telemetry.Wrap(tep, rec, nil)
		}
		return driveIndex(t, fine.NewClient(ep, rdma.NopEnv{}, cat, 0))
	}

	plain := runScript(nil)
	rec := telemetry.NewRecorder(2)
	instr := runScript(rec)
	if plain != instr {
		t.Fatalf("instrumented TCP run diverged:\nplain:\n%s\ninstrumented:\n%s", plain, instr)
	}
	if rec.VerbOps(telemetry.VerbRead) == 0 {
		t.Fatal("no READs recorded over TCP")
	}
	if rec.VerbLatency(telemetry.VerbRead).Max() <= 0 {
		t.Fatal("wall-clock READ latency not recorded")
	}
}

// TestListing2VerbSequence pins the fused consistent-read protocol on a
// 3-level tree: with a warm root pointer, a fine-grained point lookup visits
// each level exactly once, and each visit is ONE selectively-signalled
// READ_MULTI batch carrying [page, version word] — nothing else. The legacy
// unbatched client must still produce the paper's original Listing-2
// sequence of 2·height plain READs, also pinned here.
func TestListing2VerbSequence(t *testing.T) {
	const page, n = 512, 12000
	fab, cat := buildFineDirect(t, 1, n, page)
	rec := telemetry.NewRecorder(1)
	ep := telemetry.Wrap(fab.Endpoint(), rec, nil)
	c := fine.NewClient(ep, direct.Env{}, cat, 0)

	h, err := c.Tree().Height(direct.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Fatalf("tree height %d, want 3 (adjust page=%d / n=%d)", h, page, n)
	}
	if _, err := c.Lookup(1); err != nil { // warm the root pointer
		t.Fatal(err)
	}

	// Pick a key whose lookup is "clean": no right-moves past outgrown
	// fences and no duplicate spill into the next leaf, so the descent is
	// exactly one page per level.
	key := uint64(0)
	for k := uint64(n / 3); k < uint64(n/3)+100; k++ {
		_, st, err := c.Tree().Lookup(direct.Env{}, k)
		if err != nil {
			t.Fatal(err)
		}
		if st.Depth == h && st.PageReads == h {
			key = k
			break
		}
	}
	if key == 0 {
		t.Fatal("no clean key found")
	}

	fresh := telemetry.NewRecorder(1)
	ep.Rec = fresh
	c.SetRecorder(fresh)
	vals, err := c.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 {
		t.Fatalf("key %d not found", key)
	}

	want := int64(h)
	if got := fresh.VerbOps(telemetry.VerbReadMulti); got != want {
		t.Fatalf("lookup issued %d READ_MULTI batches, want %d (1 fused [page,version] batch per level on a height-%d tree)", got, want, h)
	}
	for v := telemetry.Verb(0); v < telemetry.NumVerbs; v++ {
		if v == telemetry.VerbReadMulti {
			continue
		}
		if got := fresh.VerbOps(v); got != 0 {
			t.Fatalf("lookup issued %d unexpected %v verbs", got, v)
		}
	}
	// Each batch carries the page plus the 8-byte version word.
	if got, want := fresh.VerbBytes(telemetry.VerbReadMulti), int64(h*(page+8)); got != want {
		t.Fatalf("lookup transferred %d bytes, want %d", got, want)
	}
	idx := fresh.StatsMap()["index"].(map[string]any)
	if idx["ops"].(int64) != 1 {
		t.Fatalf("index ops = %v, want 1", idx["ops"])
	}
	if d := idx["avg_depth"].(float64); d != float64(h) {
		t.Fatalf("recorded depth %v, want %d", d, h)
	}
	// ExposedRTTs must equal depth for a clean warm-root lookup: one fused
	// round trip per level (was 2·depth under the unbatched protocol).
	if r := idx["exposed_rtts"].(int64); r != int64(h) {
		t.Fatalf("exposed RTTs = %d, want %d", r, h)
	}

	// The unbatched baseline client still runs the paper's original verb
	// sequence: two plain READs per level, no batches.
	fab2, cat2 := buildFineDirect(t, 1, n, page)
	rec2 := telemetry.NewRecorder(1)
	ep2 := telemetry.Wrap(fab2.Endpoint(), rec2, nil)
	c2 := fine.NewUnbatchedClient(ep2, direct.Env{}, cat2, 0)
	if _, err := c2.Lookup(1); err != nil { // warm the root pointer
		t.Fatal(err)
	}
	fresh2 := telemetry.NewRecorder(1)
	ep2.Rec = fresh2
	vals2, err := c2.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals2) == 0 {
		t.Fatalf("key %d not found via unbatched client", key)
	}
	if got, want := fresh2.VerbOps(telemetry.VerbRead), int64(2*h); got != want {
		t.Fatalf("unbatched lookup issued %d READs, want %d (2 per level)", got, want)
	}
	if got := fresh2.VerbOps(telemetry.VerbReadMulti); got != 0 {
		t.Fatalf("unbatched lookup issued %d READ_MULTI batches, want 0", got)
	}
}

// TestFusedLegacyByteIdentical asserts the fused (doorbell-batched) and
// legacy (two-READ) read paths are observationally equivalent: the same
// operation script yields byte-identical transcripts on both the direct and
// TCP transports. Run with -race this also exercises the batched path for
// data races.
func TestFusedLegacyByteIdentical(t *testing.T) {
	t.Run("direct", func(t *testing.T) {
		fab, cat := buildFineDirect(t, 2, 5000, 512)
		fused := driveIndex(t, fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0))

		fab2, cat2 := buildFineDirect(t, 2, 5000, 512)
		legacy := driveIndex(t, fine.NewUnbatchedClient(fab2.Endpoint(), direct.Env{}, cat2, 0))

		if fused != legacy {
			t.Fatalf("fused and legacy read paths diverged:\nfused:\n%s\nlegacy:\n%s", fused, legacy)
		}
	})
	t.Run("tcpnet", func(t *testing.T) {
		runScript := func(unbatched bool) string {
			var addrs []string
			for i := 0; i < 2; i++ {
				srv := rdma.NewServer(i, 64<<20, nam.SuperblockBytes)
				agent := tcpnet.NewAgent(srv, nil)
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addrs = append(addrs, l.Addr().String())
				go agent.Serve(l)
				t.Cleanup(agent.Close)
			}
			setup := tcpnet.Dial(addrs)
			cat, err := fine.Build(setup, fine.Options{Layout: layout.New(1024)},
				core.BuildSpec{N: 2000, At: workload.DataItem, HeadEvery: 16})
			setup.Close()
			if err != nil {
				t.Fatal(err)
			}
			ep := tcpnet.Dial(addrs)
			t.Cleanup(ep.Close)
			c := fine.NewClient(ep, rdma.NopEnv{}, cat, 0)
			if unbatched {
				c = fine.NewUnbatchedClient(ep, rdma.NopEnv{}, cat, 0)
			}
			return driveIndex(t, c)
		}
		fused := runScript(false)
		legacy := runScript(true)
		if fused != legacy {
			t.Fatalf("fused and legacy TCP read paths diverged:\nfused:\n%s\nlegacy:\n%s", fused, legacy)
		}
	})
}

// TestOpStatsRPCRoundTrip checks the introspection RPC: a server whose
// handler is wrapped with Instrument answers nam.OpStats with its
// recorder's counters, even when it has no handler logic of its own.
func TestOpStatsRPCRoundTrip(t *testing.T) {
	fab := direct.New(1, 16<<20, nam.SuperblockBytes)
	rec := telemetry.NewRecorder(1)
	rec.RecordVerb(telemetry.VerbRead, 0, 64, 1500)
	fab.SetHandler(telemetry.Instrument(nil, rec, nil))

	m, err := telemetry.FetchStats(fab.Endpoint(), 0)
	if err != nil {
		t.Fatal(err)
	}
	verbs, ok := m["verbs"].(map[string]any)
	if !ok {
		t.Fatalf("no verbs section in %v", m)
	}
	read, ok := verbs["READ"].(map[string]any)
	if !ok {
		t.Fatalf("no READ entry in %v", verbs)
	}
	if ops := read["ops"].(float64); ops != 1 {
		t.Fatalf("READ ops = %v, want 1", ops)
	}
	if bytes := read["bytes"].(float64); bytes != 64 {
		t.Fatalf("READ bytes = %v, want 64", bytes)
	}

	// A server with telemetry disabled reports an error, not garbage.
	fab2 := direct.New(1, 16<<20, nam.SuperblockBytes)
	fab2.SetHandler(telemetry.Instrument(nil, nil, telemetry.NewTracer()))
	if _, err := telemetry.FetchStats(fab2.Endpoint(), 0); err == nil {
		t.Fatal("FetchStats succeeded against a recorder-less server")
	}
}
