package telemetry

import (
	"github.com/namdb/rdmatree/internal/rdma"
)

// Endpoint decorates an rdma.Endpoint, recording per-verb counters and
// latencies into Rec and (optionally) emitting one trace span per verb into
// Tr. The wrapped transport is unchanged; with Rec and Tr both nil every
// method is a plain delegation behind one nil check.
//
// Like the endpoints it wraps, an Endpoint is owned by a single client
// goroutine; the Recorder it feeds may be shared (its counters are atomic).
type Endpoint struct {
	Inner rdma.Endpoint
	Rec   *Recorder
	Clock Clock
	Tr    *Tracer
	// Pid/Tid name this endpoint's track in the trace (process = role,
	// thread = client id).
	Pid int
	Tid int

	// Async post/poll passthrough state (see Poll).
	async     rdma.AsyncEndpoint
	pending   []pendingPost
	unflushed int
}

// pendingPost remembers what was posted so the completion can be attributed
// to the right verb counter when the batch polls.
type pendingPost struct {
	verb   Verb
	server int
	bytes  int64
}

var _ rdma.Endpoint = (*Endpoint)(nil)
var _ rdma.AsyncEndpoint = (*Endpoint)(nil)

// Wrap decorates inner. A nil clock defaults to the wall clock; pass the
// owning *sim.Proc on the simulated fabric so latencies are virtual-time.
func Wrap(inner rdma.Endpoint, rec *Recorder, clock Clock) *Endpoint {
	if clock == nil {
		clock = Wall
	}
	return &Endpoint{Inner: inner, Rec: rec, Clock: clock}
}

// WithTrace attaches a tracer track to the endpoint and returns it.
func (e *Endpoint) WithTrace(tr *Tracer, pid, tid int) *Endpoint {
	e.Tr = tr
	e.Pid = pid
	e.Tid = tid
	return e
}

// off reports whether instrumentation is disabled (the fast path).
func (e *Endpoint) off() bool { return e.Rec == nil && e.Tr == nil }

// finish records one completed verb issued at start.
func (e *Endpoint) finish(v Verb, server int, bytes, start int64) {
	end := e.Clock.Now()
	if e.Rec != nil {
		e.Rec.RecordVerb(v, server, bytes, end-start)
	}
	if e.Tr != nil {
		e.Tr.Span(e.Pid, e.Tid, v.String(), "verb", start, end)
	}
}

// Read implements rdma.Endpoint.
func (e *Endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	if e.off() {
		return e.Inner.Read(p, dst)
	}
	start := e.Clock.Now()
	err := e.Inner.Read(p, dst)
	e.finish(VerbRead, p.Server(), int64(8*len(dst)), start)
	return err
}

// ReadMulti implements rdma.Endpoint. The batch counts as one op (one
// completion is waited on) whose bytes are the whole payload; destinations
// are counted per pointer.
func (e *Endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	if e.off() {
		return e.Inner.ReadMulti(ps, dst)
	}
	start := e.Clock.Now()
	err := e.Inner.ReadMulti(ps, dst)
	var bytes int64
	for _, d := range dst {
		bytes += int64(8 * len(d))
	}
	e.finish(VerbReadMulti, -1, bytes, start)
	if e.Rec != nil {
		for _, p := range ps {
			e.Rec.RecordDest(VerbReadMulti, p.Server())
		}
	}
	return err
}

// Write implements rdma.Endpoint.
func (e *Endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	if e.off() {
		return e.Inner.Write(p, src)
	}
	start := e.Clock.Now()
	err := e.Inner.Write(p, src)
	e.finish(VerbWrite, p.Server(), int64(8*len(src)), start)
	return err
}

// CompareAndSwap implements rdma.Endpoint.
func (e *Endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	if e.off() {
		return e.Inner.CompareAndSwap(p, old, new)
	}
	start := e.Clock.Now()
	prev, err := e.Inner.CompareAndSwap(p, old, new)
	e.finish(VerbCAS, p.Server(), 8, start)
	return prev, err
}

// FetchAdd implements rdma.Endpoint.
func (e *Endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	if e.off() {
		return e.Inner.FetchAdd(p, delta)
	}
	start := e.Clock.Now()
	prev, err := e.Inner.FetchAdd(p, delta)
	e.finish(VerbFetchAdd, p.Server(), 8, start)
	return prev, err
}

// Alloc implements rdma.Endpoint.
func (e *Endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	if e.off() {
		return e.Inner.Alloc(server, n)
	}
	start := e.Clock.Now()
	p, err := e.Inner.Alloc(server, n)
	e.finish(VerbAlloc, server, int64(n), start)
	return p, err
}

// Free implements rdma.Endpoint.
func (e *Endpoint) Free(p rdma.RemotePtr, n int) error {
	if e.off() {
		return e.Inner.Free(p, n)
	}
	start := e.Clock.Now()
	err := e.Inner.Free(p, n)
	e.finish(VerbFree, p.Server(), int64(n), start)
	return err
}

// Call implements rdma.Endpoint. Bytes count both directions of the message
// exchange.
func (e *Endpoint) Call(server int, req []byte) ([]byte, error) {
	if e.off() {
		return e.Inner.Call(server, req)
	}
	start := e.Clock.Now()
	resp, err := e.Inner.Call(server, req)
	e.finish(VerbCall, server, int64(len(req)+len(resp)), start)
	return resp, err
}

// NumServers implements rdma.Endpoint.
func (e *Endpoint) NumServers() int { return e.Inner.NumServers() }

// --- non-blocking post/poll surface (rdma.AsyncEndpoint) -----------------
//
// The decorator forwards every posted verb 1:1, in order, to the inner async
// surface (rdma.Async of the wrapped endpoint), so the inner tokens are
// returned unchanged and stay monotonic from 0. Verbs are counted at
// completion: each one is attributed the whole batch's poll latency, which is
// exactly its exposed latency — the client could not have observed the result
// any sooner — mirroring how ReadMulti counts one waited-on completion for a
// fused batch. Doorbell flushes feed the pipeline coalescing counters.

// ensureAsync resolves the inner async surface on first use.
func (e *Endpoint) ensureAsync() rdma.AsyncEndpoint {
	if e.async == nil {
		e.async = rdma.Async(e.Inner)
	}
	return e.async
}

func (e *Endpoint) posted(v Verb, server int, bytes int64) {
	e.unflushed++
	if e.off() {
		return
	}
	e.pending = append(e.pending, pendingPost{verb: v, server: server, bytes: bytes})
	if e.Rec != nil {
		e.Rec.CountPipelinePosted(1)
	}
}

// PostRead implements rdma.AsyncEndpoint.
func (e *Endpoint) PostRead(p rdma.RemotePtr, dst []uint64) rdma.Token {
	tok := e.ensureAsync().PostRead(p, dst)
	e.posted(VerbRead, p.Server(), int64(8*len(dst)))
	return tok
}

// PostWrite implements rdma.AsyncEndpoint.
func (e *Endpoint) PostWrite(p rdma.RemotePtr, src []uint64) rdma.Token {
	tok := e.ensureAsync().PostWrite(p, src)
	e.posted(VerbWrite, p.Server(), int64(8*len(src)))
	return tok
}

// PostCAS implements rdma.AsyncEndpoint.
func (e *Endpoint) PostCAS(p rdma.RemotePtr, old, new uint64) rdma.Token {
	tok := e.ensureAsync().PostCAS(p, old, new)
	e.posted(VerbCAS, p.Server(), 8)
	return tok
}

// PostFetchAdd implements rdma.AsyncEndpoint.
func (e *Endpoint) PostFetchAdd(p rdma.RemotePtr, delta uint64) rdma.Token {
	tok := e.ensureAsync().PostFetchAdd(p, delta)
	e.posted(VerbFetchAdd, p.Server(), 8)
	return tok
}

// PostCall implements rdma.AsyncEndpoint.
func (e *Endpoint) PostCall(server int, req []byte) rdma.Token {
	tok := e.ensureAsync().PostCall(server, req)
	e.posted(VerbCall, server, int64(len(req)))
	return tok
}

// Flush implements rdma.AsyncEndpoint, counting one doorbell per non-empty
// flush.
func (e *Endpoint) Flush() {
	e.ensureAsync().Flush()
	if e.unflushed > 0 {
		e.unflushed = 0
		if e.Rec != nil {
			e.Rec.CountPipelineFlush()
		}
	}
}

// Poll implements rdma.AsyncEndpoint.
func (e *Endpoint) Poll(out []rdma.Completion) []rdma.Completion {
	if e.unflushed > 0 {
		// Poll implies the doorbell for anything not yet flushed.
		e.unflushed = 0
		if e.Rec != nil {
			e.Rec.CountPipelineFlush()
		}
	}
	if e.off() {
		e.pending = e.pending[:0]
		return e.ensureAsync().Poll(out)
	}
	base := len(out)
	start := e.Clock.Now()
	out = e.ensureAsync().Poll(out)
	end := e.Clock.Now()
	comps := out[base:]
	for i := range comps {
		p := &e.pending[i]
		bytes := p.bytes
		if p.verb == VerbCall {
			bytes += int64(len(comps[i].Resp))
		}
		if e.Rec != nil {
			e.Rec.RecordVerb(p.verb, p.server, bytes, end-start)
		}
	}
	if e.Tr != nil && len(comps) > 0 {
		e.Tr.Span(e.Pid, e.Tid, "POLL", "verb", start, end)
	}
	e.pending = e.pending[:0]
	return out
}
