package telemetry

import (
	"encoding/json"
	"fmt"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
)

// envClock is satisfied by server execution environments that carry a
// virtual clock (simnet's handler env); Instrument uses it so server-side
// spans are timed in the simulation's time base.
type envClock interface {
	Now() int64
}

// serverPidBase offsets server handler tracks from client tracks in traces:
// pid serverPidBase+s is server s's handler process group.
const serverPidBase = 1000

// ServerPid returns the trace process id of server s's handler track.
func ServerPid(s int) int { return serverPidBase + s }

// Instrument decorates an RPC handler with telemetry: it times every
// request (virtual time when the env provides a clock), emits one trace
// span per request on the owning server's track, and answers the
// nam.OpStats introspection RPC itself with rec's live counters — so every
// design's server, including a passive memory server with no handler logic
// of its own, can report its telemetry over the existing connection.
func Instrument(h rdma.Handler, rec *Recorder, tr *Tracer) rdma.Handler {
	if rec == nil && tr == nil {
		return h
	}
	return func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		if len(req) > 0 && req[0] == nam.OpStats {
			return statsResponse(rec), rdma.Work{}
		}
		if h == nil {
			return nam.ErrResponse(fmt.Errorf("telemetry: no handler installed")).Encode(), rdma.Work{}
		}
		if tr == nil {
			return h(env, server, req)
		}
		clock, ok := env.(envClock)
		if !ok {
			resp, w := h(env, server, req)
			return resp, w
		}
		start := clock.Now()
		resp, w := h(env, server, req)
		name := "rpc"
		if len(req) > 0 {
			name = nam.OpName(req[0])
		}
		tr.Span(serverPidBase+server, 0, name, "rpc", start, clock.Now())
		return resp, w
	}
}

// statsResponse encodes rec's counters as JSON packed into the response's
// Pairs field.
func statsResponse(rec *Recorder) []byte {
	if rec == nil {
		return nam.ErrResponse(fmt.Errorf("telemetry: not enabled on this server")).Encode()
	}
	blob, err := json.Marshal(rec.StatsMap())
	if err != nil {
		return nam.ErrResponse(err).Encode()
	}
	resp := &nam.Response{Status: nam.StatusOK, Pairs: nam.PackBytes(blob)}
	return resp.Encode()
}

// FetchStats issues the nam.OpStats RPC to one server over ep and returns
// the decoded JSON document.
func FetchStats(ep rdma.Endpoint, server int) (map[string]any, error) {
	req := nam.Request{Op: nam.OpStats}
	raw, err := ep.Call(server, req.Encode())
	if err != nil {
		return nil, err
	}
	resp, err := nam.DecodeResponse(raw)
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(nam.UnpackBytes(resp.Pairs), &m); err != nil {
		return nil, fmt.Errorf("telemetry: bad stats payload: %w", err)
	}
	return m, nil
}
