package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var (
	publishedMu sync.Mutex
	published   = map[string]*Recorder{}

	handlersMu sync.Mutex
	handlers   = map[string]http.Handler{}
)

// Handle registers h at pattern on every mux returned by a later Mux() call
// (and thus on ServeMetrics servers). It lets subsystems contribute
// endpoints — e.g. the OpenMetrics /metrics exporter — without this package
// importing them. Re-registering a pattern replaces the previous handler.
func Handle(pattern string, h http.Handler) {
	handlersMu.Lock()
	defer handlersMu.Unlock()
	handlers[pattern] = h
}

// Publish registers rec under name in the process-wide expvar registry, so
// /debug/vars includes its live counters. Re-publishing a name replaces the
// previous recorder instead of panicking (expvar.Publish panics on
// duplicates, which would break server restarts in tests).
func Publish(name string, rec *Recorder) {
	publishedMu.Lock()
	defer publishedMu.Unlock()
	_, known := published[name]
	published[name] = rec
	if !known && expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any {
			publishedMu.Lock()
			r := published[name]
			publishedMu.Unlock()
			if r == nil {
				return nil
			}
			return r.StatsMap()
		}))
	}
}

// Mux returns an http mux serving the observability endpoints:
// /debug/vars (expvar, includes every Published recorder) and
// /debug/pprof/ (CPU, heap, goroutine, block profiles), and every handler
// registered with Handle (e.g. the OpenMetrics /metrics exporter).
func Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	handlersMu.Lock()
	for pattern, h := range handlers {
		mux.Handle(pattern, h)
	}
	handlersMu.Unlock()
	return mux
}

// ServeMetrics starts the observability HTTP server on addr (e.g. ":6060")
// in a background goroutine and returns the bound address. The server runs
// until the process exits.
func ServeMetrics(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Mux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
