// Package telemetry provides verbs-level observability for the index
// designs: an instrumented rdma.Endpoint decorator that counts and times
// every verb a client issues, index-protocol event counters (traversal
// depth, lock retries, splits, version aborts, cache effectiveness), a
// Chrome trace_event emitter for per-op timelines, and expvar/pprof
// surfacing for live deployments.
//
// The paper's argument (Figures 6-9) is made by counting verbs: who wins is
// explained by how many READs/CASes/RPCs and bytes each design issues per
// operation. This package makes those counts visible on every run.
//
// Everything here is a decorator: transports and protocol code are not
// modified, and a nil *Recorder / *Tracer disables instrumentation with only
// a nil-check on the hot path.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/stats"
)

// Verb enumerates the operations of the rdma.Endpoint interface.
type Verb int

// Verb values, one per rdma.Endpoint method.
const (
	VerbRead Verb = iota
	VerbReadMulti
	VerbWrite
	VerbCAS
	VerbFetchAdd
	VerbAlloc
	VerbFree
	VerbCall
	NumVerbs
)

var verbNames = [NumVerbs]string{
	"READ", "READ_MULTI", "WRITE", "CAS", "FETCH_ADD", "ALLOC", "FREE", "CALL",
}

// String returns the verb's wire-level name.
func (v Verb) String() string {
	if v < 0 || v >= NumVerbs {
		return fmt.Sprintf("VERB(%d)", int(v))
	}
	return verbNames[v]
}

// Clock supplies timestamps in nanoseconds. On real transports this is the
// wall clock; on the simulated fabric it is a process's virtual clock
// (*sim.Proc satisfies Clock directly), so latencies and traces are measured
// in the same time base the simulation models.
type Clock interface {
	Now() int64
}

type wallClock struct{}

func (wallClock) Now() int64 { return time.Now().UnixNano() }

// Wall is the real-time Clock used on the direct and tcpnet transports.
var Wall Clock = wallClock{}

// verbStats aggregates one verb type.
type verbStats struct {
	Ops   stats.Counter
	Bytes stats.Counter
	Dest  *stats.PerServer // ops per destination server
	Lat   stats.Histogram  // nanoseconds per call
}

// Recorder accumulates telemetry. One Recorder may be shared by many
// endpoints and handlers (all counters are atomic), or kept per worker and
// folded together with Merge to keep the hot path contention-free.
type Recorder struct {
	servers int
	verbs   [NumVerbs]verbStats

	// Index-protocol counters (btree.Stats events).
	indexOps  stats.Counter
	depthSum  stats.Counter
	pageReads stats.Counter
	rttSum    stats.Counter
	restarts  stats.Counter
	lockSpins stats.Counter
	verAborts stats.Counter
	lockRetry stats.Counter
	splits    stats.Counter

	// Cache effectiveness counters (fed by internal/cache).
	cacheHits  stats.Counter
	cacheMiss  stats.Counter
	cacheInval stats.Counter

	// Fault-injection and recovery counters (fed by internal/rdma/faultnet,
	// internal/rdma/retry, and internal/core's operation recovery).
	faultDrops      stats.Counter
	faultDelays     stats.Counter
	faultDelayTOs   stats.Counter
	faultQPErrors   stats.Counter
	faultServerDown stats.Counter
	faultServerLost stats.Counter
	faultCrashes    stats.Counter
	faultOther      stats.Counter
	verbRetries     stats.Counter
	qpReconnects    stats.Counter
	opRecoveries    stats.Counter

	// Pipelined-dataplane counters (fed by the telemetry Endpoint's async
	// surface and by internal/pipeline's engine).
	pipePosted      stats.Counter // verbs posted on the async surface
	pipeFlushes     stats.Counter // non-empty doorbell flushes
	pipeOps         stats.Counter // index ops completed by a pipelined engine
	pipeRounds      stats.Counter // submission/completion rounds pumped
	pipeInflightSum stats.Counter // sum over rounds of ops in flight
}

// NewRecorder creates a Recorder for a cluster of numServers memory servers.
func NewRecorder(numServers int) *Recorder {
	r := &Recorder{servers: numServers}
	for i := range r.verbs {
		r.verbs[i].Dest = stats.NewPerServer(numServers)
	}
	return r
}

// RecordVerb records one completed verb: its destination server, payload
// bytes, and latency in nanoseconds. server < 0 skips the destination
// counter (used for batched verbs whose destinations are counted per
// pointer via RecordDest).
func (r *Recorder) RecordVerb(v Verb, server int, bytes, durNS int64) {
	vs := &r.verbs[v]
	vs.Ops.Inc()
	vs.Bytes.Add(bytes)
	if server >= 0 && server < r.servers {
		vs.Dest.Add(server, 1)
	}
	vs.Lat.Record(durNS)
}

// RecordDest adds one destination hit for v without counting an op — used by
// ReadMulti, which is one verb (one completion waited on) fanning out to
// many servers.
func (r *Recorder) RecordDest(v Verb, server int) {
	if server >= 0 && server < r.servers {
		r.verbs[v].Dest.Add(server, 1)
	}
}

// RecordIndexOp folds the protocol counters of one completed index operation
// into the recorder.
func (r *Recorder) RecordIndexOp(st btree.Stats) {
	r.indexOps.Inc()
	r.depthSum.Add(int64(st.Depth))
	r.pageReads.Add(int64(st.PageReads))
	r.rttSum.Add(int64(st.ExposedRTTs))
	r.restarts.Add(int64(st.Restarts))
	r.lockSpins.Add(int64(st.LockSpins))
	r.verAborts.Add(int64(st.VersionAborts))
	r.lockRetry.Add(int64(st.LockRetries))
	r.splits.Add(int64(st.Splits))
}

// CacheHit counts one page-cache hit. Satisfies internal/cache's Telemetry
// hook interface.
func (r *Recorder) CacheHit() { r.cacheHits.Inc() }

// CacheMiss counts one page-cache miss.
func (r *Recorder) CacheMiss() { r.cacheMiss.Inc() }

// CacheInvalidation counts one page-cache invalidation (a cached copy found
// stale, or dropped after a structure modification).
func (r *Recorder) CacheInvalidation() { r.cacheInval.Inc() }

// CountFault counts one injected fault by kind. Satisfies faultnet's
// Counters hook interface; the kind strings are faultnet's Fault* labels
// (plus "crash" for scripted server crashes).
func (r *Recorder) CountFault(kind string) {
	switch kind {
	case "drop":
		r.faultDrops.Inc()
	case "delay":
		r.faultDelays.Inc()
	case "delay-timeout":
		r.faultDelayTOs.Inc()
	case "qp-error":
		r.faultQPErrors.Inc()
	case "server-down":
		r.faultServerDown.Inc()
	case "server-lost":
		r.faultServerLost.Inc()
	case "crash":
		r.faultCrashes.Inc()
	default:
		r.faultOther.Inc()
	}
}

// CountRetry counts one verb re-attempt after a transient failure.
// Satisfies the retry package's Counters hook interface.
func (r *Recorder) CountRetry() { r.verbRetries.Inc() }

// CountReconnect counts one successful QP re-establishment.
func (r *Recorder) CountReconnect() { r.qpReconnects.Inc() }

// CountOpRecovery counts one epoch-fenced operation re-traversal. Satisfies
// core's RecoveryCounters hook interface.
func (r *Recorder) CountOpRecovery() { r.opRecoveries.Inc() }

// CountPipelinePosted counts n verbs posted on the non-blocking surface.
func (r *Recorder) CountPipelinePosted(n int64) { r.pipePosted.Add(n) }

// CountPipelineFlush counts one non-empty doorbell flush.
func (r *Recorder) CountPipelineFlush() { r.pipeFlushes.Inc() }

// CountPipelineOp counts one index operation completed by a pipelined
// engine.
func (r *Recorder) CountPipelineOp() { r.pipeOps.Inc() }

// RecordPipelineRound records one submission/completion round with the given
// number of operations in flight; the running sum yields the average
// ops-in-flight gauge.
func (r *Recorder) RecordPipelineRound(inflight int64) {
	r.pipeRounds.Inc()
	r.pipeInflightSum.Add(inflight)
}

// PipelinePosted returns the number of verbs posted on the non-blocking
// surface.
func (r *Recorder) PipelinePosted() int64 { return r.pipePosted.Load() }

// PipelineFlushes returns the number of non-empty doorbell flushes counted.
func (r *Recorder) PipelineFlushes() int64 { return r.pipeFlushes.Load() }

// PipelineOps returns the number of pipelined index operations counted.
func (r *Recorder) PipelineOps() int64 { return r.pipeOps.Load() }

// CoalescingRatio returns posted verbs per doorbell flush — how many verbs
// the average doorbell batch carried — or 0 when nothing was flushed.
func (r *Recorder) CoalescingRatio() float64 {
	f := r.pipeFlushes.Load()
	if f == 0 {
		return 0
	}
	return float64(r.pipePosted.Load()) / float64(f)
}

// AvgInflight returns the average number of operations in flight per
// pipelined round, or 0 when no rounds were recorded.
func (r *Recorder) AvgInflight() float64 {
	n := r.pipeRounds.Load()
	if n == 0 {
		return 0
	}
	return float64(r.pipeInflightSum.Load()) / float64(n)
}

// Faults returns the total number of injected faults counted (benign delays
// included).
func (r *Recorder) Faults() int64 {
	return r.faultDrops.Load() + r.faultDelays.Load() + r.faultDelayTOs.Load() +
		r.faultQPErrors.Load() + r.faultServerDown.Load() + r.faultServerLost.Load() +
		r.faultCrashes.Load() + r.faultOther.Load()
}

// Retries returns the number of verb re-attempts counted.
func (r *Recorder) Retries() int64 { return r.verbRetries.Load() }

// Reconnects returns the number of successful QP re-establishments counted.
func (r *Recorder) Reconnects() int64 { return r.qpReconnects.Load() }

// OpRecoveries returns the number of epoch-fenced operation re-traversals
// counted.
func (r *Recorder) OpRecoveries() int64 { return r.opRecoveries.Load() }

// Merge folds other's counts into r. Per-server destination counters are
// folded up to the smaller cluster size.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil {
		return
	}
	for v := Verb(0); v < NumVerbs; v++ {
		src, dst := &other.verbs[v], &r.verbs[v]
		dst.Ops.Add(src.Ops.Load())
		dst.Bytes.Add(src.Bytes.Load())
		n := r.servers
		if other.servers < n {
			n = other.servers
		}
		for s := 0; s < n; s++ {
			if c := src.Dest.Get(s); c != 0 {
				dst.Dest.Add(s, c)
			}
		}
		dst.Lat.Merge(&src.Lat)
	}
	r.indexOps.Add(other.indexOps.Load())
	r.depthSum.Add(other.depthSum.Load())
	r.pageReads.Add(other.pageReads.Load())
	r.rttSum.Add(other.rttSum.Load())
	r.restarts.Add(other.restarts.Load())
	r.lockSpins.Add(other.lockSpins.Load())
	r.verAborts.Add(other.verAborts.Load())
	r.lockRetry.Add(other.lockRetry.Load())
	r.splits.Add(other.splits.Load())
	r.cacheHits.Add(other.cacheHits.Load())
	r.cacheMiss.Add(other.cacheMiss.Load())
	r.cacheInval.Add(other.cacheInval.Load())
	r.faultDrops.Add(other.faultDrops.Load())
	r.faultDelays.Add(other.faultDelays.Load())
	r.faultDelayTOs.Add(other.faultDelayTOs.Load())
	r.faultQPErrors.Add(other.faultQPErrors.Load())
	r.faultServerDown.Add(other.faultServerDown.Load())
	r.faultServerLost.Add(other.faultServerLost.Load())
	r.faultCrashes.Add(other.faultCrashes.Load())
	r.faultOther.Add(other.faultOther.Load())
	r.verbRetries.Add(other.verbRetries.Load())
	r.qpReconnects.Add(other.qpReconnects.Load())
	r.opRecoveries.Add(other.opRecoveries.Load())
	r.pipePosted.Add(other.pipePosted.Load())
	r.pipeFlushes.Add(other.pipeFlushes.Load())
	r.pipeOps.Add(other.pipeOps.Load())
	r.pipeRounds.Add(other.pipeRounds.Load())
	r.pipeInflightSum.Add(other.pipeInflightSum.Load())
}

// VerbOps returns the op count of one verb.
func (r *Recorder) VerbOps(v Verb) int64 { return r.verbs[v].Ops.Load() }

// VerbBytes returns the byte count of one verb.
func (r *Recorder) VerbBytes(v Verb) int64 { return r.verbs[v].Bytes.Load() }

// VerbDest returns the per-server destination counts of one verb.
func (r *Recorder) VerbDest(v Verb) []int64 { return r.verbs[v].Dest.Snapshot() }

// VerbLatency returns a snapshot of one verb's latency histogram.
func (r *Recorder) VerbLatency(v Verb) stats.Snapshot { return r.verbs[v].Lat.Snapshot() }

// TotalOps returns the op count summed over all verbs.
func (r *Recorder) TotalOps() int64 {
	var t int64
	for v := Verb(0); v < NumVerbs; v++ {
		t += r.verbs[v].Ops.Load()
	}
	return t
}

// OneSidedOps returns the op count of the one-sided verbs (everything but
// CALL) — the paper's "number of RDMA operations per lookup" metric.
func (r *Recorder) OneSidedOps() int64 { return r.TotalOps() - r.VerbOps(VerbCall) }

// IndexOps returns the number of index operations recorded.
func (r *Recorder) IndexOps() int64 { return r.indexOps.Load() }

// ExposedRTTs returns the total btree.Stats.ExposedRTTs folded in: the
// blocking network interactions counted by the fused consistent-read
// protocol.
func (r *Recorder) ExposedRTTs() int64 { return r.rttSum.Load() }

// RTTsPerOp returns exposed round trips per index operation, or 0 when no
// index operations were recorded.
func (r *Recorder) RTTsPerOp() float64 {
	ops := r.indexOps.Load()
	if ops == 0 {
		return 0
	}
	return float64(r.rttSum.Load()) / float64(ops)
}

// StatsMap renders the recorder as a JSON-marshalable tree — the payload of
// the expvar endpoint and the nam.OpStats RPC.
func (r *Recorder) StatsMap() map[string]any {
	verbs := map[string]any{}
	for v := Verb(0); v < NumVerbs; v++ {
		vs := &r.verbs[v]
		ops := vs.Ops.Load()
		if ops == 0 {
			continue
		}
		lat := vs.Lat.Snapshot()
		verbs[v.String()] = map[string]any{
			"ops":        ops,
			"bytes":      vs.Bytes.Load(),
			"per_server": vs.Dest.Snapshot(),
			"lat_ns": map[string]any{
				"mean": int64(lat.Mean()),
				"p50":  lat.Percentile(50),
				"p99":  lat.Percentile(99),
				"max":  lat.Max(),
			},
		}
	}
	m := map[string]any{
		"verbs": verbs,
		"index": map[string]any{
			"ops":            r.indexOps.Load(),
			"avg_depth":      r.avgDepth(),
			"page_reads":     r.pageReads.Load(),
			"exposed_rtts":   r.rttSum.Load(),
			"rtts_per_op":    r.RTTsPerOp(),
			"restarts":       r.restarts.Load(),
			"lock_spins":     r.lockSpins.Load(),
			"version_aborts": r.verAborts.Load(),
			"lock_retries":   r.lockRetry.Load(),
			"splits":         r.splits.Load(),
		},
	}
	if h, mi, iv := r.cacheHits.Load(), r.cacheMiss.Load(), r.cacheInval.Load(); h+mi+iv > 0 {
		m["cache"] = map[string]any{"hits": h, "misses": mi, "invalidations": iv}
	}
	if r.pipePosted.Load() > 0 {
		m["pipeline"] = map[string]any{
			"posted":           r.pipePosted.Load(),
			"flushes":          r.pipeFlushes.Load(),
			"ops":              r.pipeOps.Load(),
			"rounds":           r.pipeRounds.Load(),
			"avg_inflight":     r.AvgInflight(),
			"coalescing_ratio": r.CoalescingRatio(),
		}
	}
	// Always present (zeros included): consumers reading retry/recovery
	// health — namclient stats, dashboards scraping /debug/vars — need the
	// keys to exist on a healthy run too.
	m["faults"] = map[string]any{
		"drops":          r.faultDrops.Load(),
		"delays":         r.faultDelays.Load(),
		"delay_timeouts": r.faultDelayTOs.Load(),
		"qp_errors":      r.faultQPErrors.Load(),
		"server_down":    r.faultServerDown.Load(),
		"server_lost":    r.faultServerLost.Load(),
		"crashes":        r.faultCrashes.Load(),
		"retries":        r.verbRetries.Load(),
		"reconnects":     r.qpReconnects.Load(),
		"op_recoveries":  r.opRecoveries.Load(),
	}
	return m
}

func (r *Recorder) avgDepth() float64 {
	ops := r.indexOps.Load()
	if ops == 0 {
		return 0
	}
	return float64(r.depthSum.Load()) / float64(ops)
}

// VerbTable renders the per-verb breakdown as an aligned text table: ops,
// bytes, and latency percentiles per verb — the explanation appended to
// every benchmark report.
func (r *Recorder) VerbTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s%12s%12s%12s%12s%12s%12s\n",
		"verb", "ops", "bytes", "p50(ns)", "p99(ns)", "max(ns)", "mean(ns)")
	for v := Verb(0); v < NumVerbs; v++ {
		vs := &r.verbs[v]
		ops := vs.Ops.Load()
		if ops == 0 {
			continue
		}
		lat := vs.Lat.Snapshot()
		fmt.Fprintf(&b, "%-12s%12s%12s%12d%12d%12d%12d\n",
			v.String(),
			stats.FormatQty(float64(ops)),
			stats.FormatQty(float64(vs.Bytes.Load())),
			lat.Percentile(50), lat.Percentile(99), lat.Max(), int64(lat.Mean()))
	}
	if r.TotalOps() == 0 {
		b.WriteString("(no verbs recorded)\n")
	}
	return b.String()
}

// ProtoSummary renders the index-protocol counters on a few lines, including
// per-op averages when index operations were recorded.
func (r *Recorder) ProtoSummary() string {
	var b strings.Builder
	ops := r.indexOps.Load()
	fmt.Fprintf(&b, "index ops=%s avg_depth=%.2f page_reads=%s rtts_per_op=%.2f restarts=%d (lock_spins=%d version_aborts=%d lock_retries=%d) splits=%d\n",
		stats.FormatQty(float64(ops)), r.avgDepth(),
		stats.FormatQty(float64(r.pageReads.Load())),
		r.RTTsPerOp(),
		r.restarts.Load(), r.lockSpins.Load(), r.verAborts.Load(),
		r.lockRetry.Load(), r.splits.Load())
	if h, mi, iv := r.cacheHits.Load(), r.cacheMiss.Load(), r.cacheInval.Load(); h+mi > 0 {
		fmt.Fprintf(&b, "cache hits=%s misses=%s invalidations=%d hit_rate=%.1f%%\n",
			stats.FormatQty(float64(h)), stats.FormatQty(float64(mi)), iv,
			100*float64(h)/float64(h+mi))
	}
	if r.Faults() > 0 || r.Retries() > 0 {
		fmt.Fprintf(&b, "faults drops=%d delays=%d delay_timeouts=%d qp_errors=%d server_down=%d server_lost=%d crashes=%d | retries=%d reconnects=%d op_recoveries=%d\n",
			r.faultDrops.Load(), r.faultDelays.Load(), r.faultDelayTOs.Load(),
			r.faultQPErrors.Load(), r.faultServerDown.Load(), r.faultServerLost.Load(),
			r.faultCrashes.Load(), r.verbRetries.Load(), r.qpReconnects.Load(),
			r.opRecoveries.Load())
	}
	return b.String()
}

// DestSkew summarizes destination balance: the per-server share of all verb
// traffic, sorted descending — a quick view of hot servers.
func (r *Recorder) DestSkew() string {
	totals := make([]int64, r.servers)
	var sum int64
	for v := Verb(0); v < NumVerbs; v++ {
		for s, c := range r.verbs[v].Dest.Snapshot() {
			totals[s] += c
			sum += c
		}
	}
	if sum == 0 {
		return "(no destinations recorded)"
	}
	type sv struct {
		srv int
		n   int64
	}
	order := make([]sv, len(totals))
	for i, n := range totals {
		order[i] = sv{i, n}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].n > order[j].n })
	var b strings.Builder
	for i, e := range order {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "s%d:%.1f%%", e.srv, 100*float64(e.n)/float64(sum))
	}
	return b.String()
}
