package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceEvent is one entry of the Chrome trace_event format (the JSON array
// flavour understood by chrome://tracing and Perfetto). Timestamps and
// durations are in microseconds; Ph is the event phase ("X" = complete
// event, "M" = metadata).
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Tracer collects trace events from any number of goroutines and writes
// them as a Chrome trace JSON document. Events past MaxEvents are dropped
// (counted) so a long run cannot exhaust memory.
type Tracer struct {
	// MaxEvents bounds the buffer; 0 means DefaultMaxEvents.
	MaxEvents int

	mu      sync.Mutex
	events  []TraceEvent
	dropped int64
}

// DefaultMaxEvents bounds a Tracer's buffer unless overridden.
const DefaultMaxEvents = 1 << 20

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span records a complete ("X") event on the (pid, tid) track. Timestamps
// are nanoseconds from the track's Clock (wall or virtual); they are
// converted to the format's microseconds at emission.
func (t *Tracer) Span(pid, tid int, name, cat string, startNS, endNS int64) {
	if endNS < startNS {
		endNS = startNS
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts:  float64(startNS) / 1e3,
		Dur: float64(endNS-startNS) / 1e3,
		Pid: pid, Tid: tid,
	})
}

// Instant records a zero-duration instant event on the (pid, tid) track.
func (t *Tracer) Instant(pid, tid int, name, cat string, tsNS int64) {
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "i",
		Ts:  float64(tsNS) / 1e3,
		Pid: pid, Tid: tid,
		Args: map[string]string{"s": "t"},
	})
}

// NameProcess attaches a display name to a pid's track group (e.g.
// "clients", "server 2 handlers").
func (t *Tracer) NameProcess(pid int, name string) {
	t.add(TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": name},
	})
}

// NameThread attaches a display name to one (pid, tid) track.
func (t *Tracer) NameThread(pid, tid int, name string) {
	t.add(TraceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]string{"name": name},
	})
}

func (t *Tracer) add(ev TraceEvent) {
	max := t.MaxEvents
	if max == 0 {
		max = DefaultMaxEvents
	}
	t.mu.Lock()
	if len(t.events) >= max {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded because the buffer filled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON writes the buffered events as a Chrome trace JSON object
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()
	doc := struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
