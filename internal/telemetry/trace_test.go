package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerWritesValidChromeJSON(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(0, "clients")
	tr.NameThread(0, 1, "client 1")
	tr.Span(0, 1, "READ", "verb", 2000, 5000)
	tr.Instant(1000, 0, "stats", "rpc", 2500)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.Bytes())
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	var span *TraceEvent
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph == "" {
			t.Fatalf("event %d has no phase: %+v", i, ev)
		}
		if ev.Ph == "X" {
			span = ev
		}
	}
	if span == nil {
		t.Fatal("no complete event emitted")
	}
	// Nanosecond inputs must land as microseconds in the document.
	if span.Ts != 2.0 || span.Dur != 3.0 {
		t.Fatalf("span ts/dur = %v/%v, want 2/3 µs", span.Ts, span.Dur)
	}
	if span.Pid != 0 || span.Tid != 1 || span.Name != "READ" {
		t.Fatalf("span track wrong: %+v", span)
	}
}

func TestTracerNegativeDurationClamped(t *testing.T) {
	tr := NewTracer()
	tr.Span(0, 0, "x", "verb", 5000, 4000)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if d := doc.TraceEvents[0].Dur; d < 0 {
		t.Fatalf("negative duration %v emitted", d)
	}
}

func TestTracerDropsPastMaxEvents(t *testing.T) {
	tr := &Tracer{MaxEvents: 3}
	for i := 0; i < 10; i++ {
		tr.Span(0, 0, "a", "verb", 0, 1)
	}
	if tr.Len() != 3 {
		t.Fatalf("buffered %d events, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped %d events, want 7", tr.Dropped())
	}
}
