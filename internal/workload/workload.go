// Package workload implements the paper's modified YCSB benchmark
// (Section 6, Table 3): point queries, range queries with configurable
// selectivity, and inserts, over data sets of monotonically increasing
// integer keys, with uniform or Zipfian request distributions.
//
// Attribute-value skew (one part of the key space dominating) is a property
// of the *data placement*, not of this generator: the evaluation models it
// by assigning 80/12/5/3% of the key range to the four memory servers
// (internal/partition.NewRangeWeighted), while requests remain uniform over
// the key space, exactly as in Section 6.1.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is the type of one index operation.
type OpKind int

// Operation kinds.
const (
	PointQuery OpKind = iota
	RangeQuery
	Insert
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case PointQuery:
		return "point"
	case RangeQuery:
		return "range"
	case Insert:
		return "insert"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated index operation.
type Op struct {
	Kind OpKind
	// Key is the lookup key, range start, or insert key.
	Key uint64
	// EndKey is the inclusive range end (RangeQuery only).
	EndKey uint64
	// Value is the payload (Insert only).
	Value uint64
}

// Mix is a workload mix in percent (Table 3).
type Mix struct {
	Name      string
	PointPct  int
	RangePct  int
	InsertPct int
}

// The four workloads of Table 3.
var (
	// WorkloadA is 100% point queries.
	WorkloadA = Mix{Name: "A", PointPct: 100}
	// WorkloadB is 100% range queries (selectivity configured separately).
	WorkloadB = Mix{Name: "B", RangePct: 100}
	// WorkloadC is 95% point queries, 5% inserts.
	WorkloadC = Mix{Name: "C", PointPct: 95, InsertPct: 5}
	// WorkloadD is 50% point queries, 50% inserts.
	WorkloadD = Mix{Name: "D", PointPct: 50, InsertPct: 50}
)

// Distribution selects how request keys are drawn.
type Distribution int

// Request distributions.
const (
	// Uniform draws keys uniformly at random over the key space (the
	// paper's evaluation setting).
	Uniform Distribution = iota
	// Zipfian draws keys from a Zipf distribution (the original YCSB
	// request-skew knob, kept as an extension).
	Zipfian
)

// Config parameterizes a Generator.
type Config struct {
	Mix Mix
	// DataSize is D: keys 0..D-1 exist after the initial load.
	DataSize uint64
	// Selectivity is the fraction s of the key space a range query covers.
	Selectivity float64
	// Dist is the request key distribution.
	Dist Distribution
	// ZipfS is the Zipf exponent (> 1); defaults to 1.1.
	ZipfS float64
	// Seed seeds the generator; combined with the client ID so each client
	// draws an independent deterministic stream.
	Seed int64
	// InsertAppend gives inserts monotonically increasing keys beyond
	// DataSize (new records, YCSB-style), concentrating them at the index's
	// right edge and — under range partitioning — on the last server. The
	// default (false) scatters inserts uniformly over the existing key
	// space as duplicates, which matches the paper's Exp. 3 behaviour (the
	// fine-grained design stays robust at high insert load). Append mode is
	// an extension exposing remote-spinlock hotspot collapse.
	InsertAppend bool
	// Clients is the total number of client threads; used to stride
	// append-style insert keys so they are globally unique. Defaults to 1.
	Clients int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Mix.PointPct+c.Mix.RangePct+c.Mix.InsertPct != 100 {
		return fmt.Errorf("workload: mix %q percentages sum to %d, want 100",
			c.Mix.Name, c.Mix.PointPct+c.Mix.RangePct+c.Mix.InsertPct)
	}
	if c.DataSize == 0 {
		return fmt.Errorf("workload: DataSize must be > 0")
	}
	if c.Mix.RangePct > 0 && (c.Selectivity <= 0 || c.Selectivity > 1) {
		return fmt.Errorf("workload: range queries need 0 < Selectivity <= 1, got %g", c.Selectivity)
	}
	return nil
}

// Generator produces the deterministic operation stream of one client.
// Generators are not safe for concurrent use; create one per client.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	zipf     *rand.Zipf
	clientID int
	inserts  uint64
}

// NewGenerator creates the generator for one client.
func NewGenerator(cfg Config, clientID int) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(clientID)*0x9e3779b97f4a7c15)))
	g := &Generator{cfg: cfg, rng: rng, clientID: clientID}
	if cfg.Dist == Zipfian {
		s := cfg.ZipfS
		if s <= 1 {
			s = 1.1
		}
		g.zipf = rand.NewZipf(rng, s, 1, cfg.DataSize-1)
	}
	return g, nil
}

// key draws a request key.
func (g *Generator) key() uint64 {
	if g.zipf != nil {
		return g.zipf.Uint64()
	}
	return uint64(g.rng.Int63n(int64(g.cfg.DataSize)))
}

// Next returns the client's next operation.
func (g *Generator) Next() Op {
	r := g.rng.Intn(100)
	switch {
	case r < g.cfg.Mix.PointPct:
		return Op{Kind: PointQuery, Key: g.key()}
	case r < g.cfg.Mix.PointPct+g.cfg.Mix.RangePct:
		start := g.key()
		span := uint64(g.cfg.Selectivity * float64(g.cfg.DataSize))
		if span < 1 {
			span = 1
		}
		end := start + span - 1
		if end >= g.cfg.DataSize {
			end = g.cfg.DataSize - 1
		}
		return Op{Kind: RangeQuery, Key: start, EndKey: end}
	default:
		g.inserts++
		// The value is unique per client so correctness checks can
		// attribute every entry.
		v := uint64(g.clientID)<<40 | g.inserts
		if g.cfg.InsertAppend {
			// New records: monotonically increasing keys beyond the loaded
			// data, interleaved across clients (right-edge hotspot).
			stride := uint64(g.cfg.Clients)
			if stride == 0 {
				stride = 1
			}
			key := g.cfg.DataSize + (g.inserts-1)*stride + uint64(g.clientID)%stride
			return Op{Kind: Insert, Key: key, Value: v}
		}
		// Duplicates scattered uniformly over the existing key space.
		return Op{Kind: Insert, Key: g.key(), Value: v}
	}
}

// RangeSpan returns the number of keys a range query covers under this
// configuration — the paper's sel*D leaf-volume driver.
func (c *Config) RangeSpan() uint64 {
	span := uint64(c.Selectivity * float64(c.DataSize))
	if span < 1 {
		span = 1
	}
	return span
}

// DataItem returns the i-th item of the initial data set: monotonically
// increasing integer keys with value = key, as in Section 6 ("data sets with
// monotonically increasing integer keys and values").
func DataItem(i int) (key, value uint64) {
	return uint64(i), uint64(i)
}
