package workload

import (
	"testing"
)

func TestMixesSumTo100(t *testing.T) {
	for _, m := range []Mix{WorkloadA, WorkloadB, WorkloadC, WorkloadD} {
		if m.PointPct+m.RangePct+m.InsertPct != 100 {
			t.Fatalf("workload %s mix sums to %d", m.Name, m.PointPct+m.RangePct+m.InsertPct)
		}
	}
}

func TestTable3Definitions(t *testing.T) {
	if WorkloadA.PointPct != 100 || WorkloadB.RangePct != 100 {
		t.Fatal("workloads A/B wrong")
	}
	if WorkloadC.PointPct != 95 || WorkloadC.InsertPct != 5 {
		t.Fatal("workload C wrong")
	}
	if WorkloadD.PointPct != 50 || WorkloadD.InsertPct != 50 {
		t.Fatal("workload D wrong")
	}
}

func TestMixProportions(t *testing.T) {
	g, err := NewGenerator(Config{Mix: WorkloadC, DataSize: 1000, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if p := float64(counts[PointQuery]) / n; p < 0.94 || p > 0.96 {
		t.Fatalf("point fraction %f; want ~0.95", p)
	}
	if p := float64(counts[Insert]) / n; p < 0.04 || p > 0.06 {
		t.Fatalf("insert fraction %f; want ~0.05", p)
	}
	if counts[RangeQuery] != 0 {
		t.Fatalf("workload C produced range queries")
	}
}

func TestKeysInRange(t *testing.T) {
	g, err := NewGenerator(Config{Mix: WorkloadA, DataSize: 500, Seed: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key >= 500 {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
}

func TestRangeSelectivity(t *testing.T) {
	cfg := Config{Mix: WorkloadB, DataSize: 100000, Selectivity: 0.01, Seed: 3}
	g, err := NewGenerator(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	span := cfg.RangeSpan()
	if span != 1000 {
		t.Fatalf("RangeSpan = %d; want 1000", span)
	}
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != RangeQuery {
			t.Fatalf("workload B produced %v", op.Kind)
		}
		if op.EndKey < op.Key {
			t.Fatalf("inverted range [%d,%d]", op.Key, op.EndKey)
		}
		if op.EndKey >= cfg.DataSize {
			t.Fatalf("range end %d beyond data size", op.EndKey)
		}
		if got := op.EndKey - op.Key + 1; got > span {
			t.Fatalf("range covers %d keys; want <= %d", got, span)
		}
	}
}

func TestDeterministicPerClient(t *testing.T) {
	mk := func(client int) []Op {
		g, err := NewGenerator(Config{Mix: WorkloadD, DataSize: 1000, Seed: 7}, client)
		if err != nil {
			t.Fatal(err)
		}
		ops := make([]Op, 100)
		for i := range ops {
			ops[i] = g.Next()
		}
		return ops
	}
	a1, a2 := mk(1), mk(1)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("client 1 stream not deterministic at %d", i)
		}
	}
	b := mk(2)
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clients 1 and 2 produced identical streams")
	}
}

func TestInsertValuesUniquePerClient(t *testing.T) {
	g1, _ := NewGenerator(Config{Mix: WorkloadD, DataSize: 100, Seed: 5}, 1)
	g2, _ := NewGenerator(Config{Mix: WorkloadD, DataSize: 100, Seed: 5}, 2)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		for _, g := range []*Generator{g1, g2} {
			op := g.Next()
			if op.Kind != Insert {
				continue
			}
			if seen[op.Value] {
				t.Fatalf("duplicate insert value %d", op.Value)
			}
			seen[op.Value] = true
		}
	}
}

func TestZipfianSkewsRequests(t *testing.T) {
	g, err := NewGenerator(Config{Mix: WorkloadA, DataSize: 100000, Dist: Zipfian, Seed: 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Key < 100 {
			hot++
		}
	}
	// Under Zipf the first 0.1% of keys should draw far more than 0.1% of
	// requests.
	if float64(hot)/n < 0.2 {
		t.Fatalf("zipfian hot fraction %f; want > 0.2", float64(hot)/n)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Mix: Mix{PointPct: 50}, DataSize: 10},
		{Mix: WorkloadA, DataSize: 0},
		{Mix: WorkloadB, DataSize: 10, Selectivity: 0},
		{Mix: WorkloadB, DataSize: 10, Selectivity: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d accepted: %+v", i, c)
		}
	}
}

func TestDataItemMonotonic(t *testing.T) {
	for i := 0; i < 100; i++ {
		k, v := DataItem(i)
		if k != uint64(i) || v != uint64(i) {
			t.Fatalf("DataItem(%d) = (%d,%d)", i, k, v)
		}
	}
}
